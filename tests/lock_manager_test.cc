#include <gtest/gtest.h>

#include <vector>

#include "lock/conflict.h"
#include "lock/lock_manager.h"
#include "lock/types.h"
#include "lock/wait_for_graph.h"

namespace accdb::lock {
namespace {

class RecordingListener : public LockManager::Listener {
 public:
  void OnGranted(TxnId txn) override { granted.push_back(txn); }
  void OnWaiterAborted(TxnId txn) override { aborted.push_back(txn); }

  std::vector<TxnId> granted;
  std::vector<TxnId> aborted;
};

class LockManagerTest : public ::testing::Test {
 protected:
  LockManagerTest() : lm_(&resolver_) { lm_.set_listener(&listener_); }

  Outcome Req(TxnId txn, ItemId item, LockMode mode,
              RequestContext ctx = {}) {
    return lm_.Request(txn, item, mode, std::move(ctx));
  }

  MatrixConflictResolver resolver_;
  LockManager lm_;
  RecordingListener listener_;
  ItemId item_ = ItemId::Row(1, 10);
  ItemId item2_ = ItemId::Row(1, 20);
};

// --- Mode helpers ---

TEST(LockModeTest, Covers) {
  EXPECT_TRUE(ModeCovers(LockMode::kX, LockMode::kS));
  EXPECT_TRUE(ModeCovers(LockMode::kX, LockMode::kIX));
  EXPECT_TRUE(ModeCovers(LockMode::kSIX, LockMode::kS));
  EXPECT_TRUE(ModeCovers(LockMode::kSIX, LockMode::kIX));
  EXPECT_TRUE(ModeCovers(LockMode::kS, LockMode::kIS));
  EXPECT_FALSE(ModeCovers(LockMode::kS, LockMode::kX));
  EXPECT_FALSE(ModeCovers(LockMode::kIX, LockMode::kS));
}

TEST(LockModeTest, Combine) {
  EXPECT_EQ(ModeCombine(LockMode::kS, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(ModeCombine(LockMode::kS, LockMode::kX), LockMode::kX);
  EXPECT_EQ(ModeCombine(LockMode::kIS, LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(ModeCombine(LockMode::kS, LockMode::kS), LockMode::kS);
}

// --- Basic compatibility ---

TEST_F(LockManagerTest, SharedLocksCoexist) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(lm_.HolderCount(item_), 2u);
}

TEST_F(LockManagerTest, ExclusiveBlocksShared) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
  EXPECT_TRUE(lm_.IsWaiting(2));
  EXPECT_EQ(lm_.BlockedBy(2), std::vector<TxnId>{1});
}

TEST_F(LockManagerTest, IntentLocksCompatible) {
  EXPECT_EQ(Req(1, item_, LockMode::kIS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kIX), Outcome::kGranted);
  EXPECT_EQ(Req(3, item_, LockMode::kIX), Outcome::kGranted);
  EXPECT_EQ(Req(4, item_, LockMode::kS), Outcome::kWaiting);  // S vs IX.
}

TEST_F(LockManagerTest, ReleaseGrantsWaiter) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  lm_.ReleaseAll(1);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{2});
  EXPECT_TRUE(lm_.Holds(2, item_, LockMode::kX));
}

TEST_F(LockManagerTest, FifoFairnessReaderBehindWriter) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  // A reader arriving after a queued writer must queue behind it.
  EXPECT_EQ(Req(3, item_, LockMode::kS), Outcome::kWaiting);
  lm_.ReleaseAll(1);
  // Writer first, reader still queued.
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{2});
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, (std::vector<TxnId>{2, 3}));
}

TEST_F(LockManagerTest, RereqestCoveredModeIsFree) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(lm_.HolderCount(item_), 1u);
}

TEST_F(LockManagerTest, BatchGrantOfCompatibleWaiters) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
  EXPECT_EQ(Req(3, item_, LockMode::kS), Outcome::kWaiting);
  lm_.ReleaseAll(1);
  EXPECT_EQ(listener_.granted, (std::vector<TxnId>{2, 3}));
}

// --- Upgrades ---

TEST_F(LockManagerTest, UpgradeGrantedWhenAlone) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_TRUE(lm_.Holds(1, item_, LockMode::kX));
  EXPECT_EQ(lm_.stats().upgrades, 1u);
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherReader) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kWaiting);
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
  EXPECT_TRUE(lm_.Holds(1, item_, LockMode::kX));
}

TEST_F(LockManagerTest, UpgradeJumpsQueue) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(3, item_, LockMode::kX), Outcome::kWaiting);
  // Txn 2's upgrade goes ahead of txn 3.
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  lm_.ReleaseAll(1);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{2});
  EXPECT_TRUE(lm_.Holds(2, item_, LockMode::kX));
}

TEST_F(LockManagerTest, DualUpgradeIsDeadlock) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kAborted);
  EXPECT_EQ(lm_.stats().deadlocks, 1u);
  // Txn 2 still holds its S lock; once it releases, txn 1 upgrades.
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
}

// --- Deadlock detection ---

TEST_F(LockManagerTest, TwoPartyCycleAbortsRequester) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item2_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kAborted);
  EXPECT_FALSE(lm_.IsWaiting(2));
  // Txn 1 is still waiting; when 2 releases, it gets the lock.
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
}

TEST_F(LockManagerTest, ThreePartyCycleDetected) {
  ItemId item3 = ItemId::Row(1, 30);
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(3, item3, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item2_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(2, item3, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(3, item_, LockMode::kX), Outcome::kAborted);
}

TEST_F(LockManagerTest, NoFalseDeadlockOnSharedChain) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
  EXPECT_EQ(Req(3, item_, LockMode::kS), Outcome::kWaiting);
  EXPECT_EQ(lm_.stats().deadlocks, 0u);
}

TEST_F(LockManagerTest, WaiterOnWaiterEdgeClosesCycle) {
  // T1 holds S on item; T2 queues an X behind it. T3's S queues behind
  // T2's X (FIFO). If T1 then needs something T3 holds, cycle through the
  // waiter edge must be found.
  EXPECT_EQ(Req(3, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(3, item_, LockMode::kS), Outcome::kWaiting);  // Behind T2.
  // T2 blocked by T1 (holder); T3 blocked by T2 (earlier waiter).
  EXPECT_EQ(Req(1, item2_, LockMode::kX), Outcome::kAborted);  // 1->3->2->1.
}

// --- Compensation priority (Section 3.4) ---

TEST_F(LockManagerTest, CompensatingRequesterAbortsCycleMembers) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  RequestContext comp;
  comp.for_compensation = true;
  // Txn 1's compensating request closes the cycle; txn 2 must be the
  // victim instead of txn 1.
  Outcome outcome = Req(1, item2_, LockMode::kX, comp);
  EXPECT_EQ(listener_.aborted, std::vector<TxnId>{2});
  EXPECT_EQ(lm_.stats().compensation_priority_aborts, 1u);
  // Txn 2's pending request was cancelled but it still holds item2; the
  // compensating request waits for the (rolled back) txn 2 to release.
  EXPECT_EQ(outcome, Outcome::kWaiting);
  lm_.ReleaseAll(2);  // Txn 2's rollback.
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
}

// A deadlock cycle can be *closed* by an unconditional assertional grant,
// with no new lock request to trigger the eager check: T1 waits for T9's X;
// T2 waits for T1's X; then T2's A-lock lands (unconditionally) on the item
// T1 waits on. ResolveAllDeadlocks must catch it.
TEST_F(LockManagerTest, LateEdgeDeadlockResolvedOnUnconditionalGrant) {
  ItemId item_a = ItemId::Row(1, 100);
  ItemId item_b = ItemId::Row(1, 200);
  EXPECT_EQ(Req(9, item_a, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_b, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_b, LockMode::kX), Outcome::kWaiting);  // T2 -> T1.
  EXPECT_EQ(Req(1, item_a, LockMode::kX), Outcome::kWaiting);  // T1 -> T9.
  EXPECT_EQ(lm_.stats().deadlocks, 0u);
  // T2's assertional lock lands on item_a: now T1 -> {T9, T2} and
  // T2 -> T1 — a cycle with no triggering request.
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(2, item_a, LockMode::kAssert, actx);
  EXPECT_EQ(lm_.stats().deadlocks, 1u);
  // One of the two waiters was aborted, breaking the cycle.
  EXPECT_EQ(listener_.aborted.size(), 1u);
  TxnId victim = listener_.aborted[0];
  EXPECT_FALSE(lm_.IsWaiting(victim));
}

// Same late-edge closure, but the stranded waiter is a compensating step:
// the OTHER cycle member must be the victim (Section 3.4).
TEST_F(LockManagerTest, LateEdgeDeadlockSparesCompensatingStep) {
  ItemId item_a = ItemId::Row(1, 100);
  ItemId item_b = ItemId::Row(1, 200);
  EXPECT_EQ(Req(9, item_a, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_b, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_b, LockMode::kX), Outcome::kWaiting);  // T2 -> T1.
  RequestContext comp;
  comp.for_compensation = true;
  EXPECT_EQ(Req(1, item_a, LockMode::kX, comp), Outcome::kWaiting);
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(2, item_a, LockMode::kAssert, actx);
  // T1 (compensating) survives; T2's request was aborted.
  EXPECT_EQ(listener_.aborted, std::vector<TxnId>{2});
  EXPECT_TRUE(lm_.IsWaiting(1));
}

// --- Assertional and compensation modes (matrix resolver semantics) ---

TEST_F(LockManagerTest, AssertBlocksForeignWriteByDefault) {
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(1, item_, LockMode::kAssert, actx);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(3, item_, LockMode::kX), Outcome::kWaiting);
}

TEST_F(LockManagerTest, AssertRequestBlockedByForeignWriter) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  RequestContext actx;
  actx.assertion = 5;
  EXPECT_EQ(Req(2, item_, LockMode::kAssert, actx), Outcome::kWaiting);
}

TEST_F(LockManagerTest, AssertLocksCoexist) {
  RequestContext a1;
  a1.assertion = 5;
  RequestContext a2;
  a2.assertion = 6;
  EXPECT_EQ(Req(1, item_, LockMode::kAssert, a1), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kAssert, a2), Outcome::kGranted);
  EXPECT_TRUE(lm_.HoldsAssertion(1, item_, 5));
  EXPECT_TRUE(lm_.HoldsAssertion(2, item_, 6));
}

TEST_F(LockManagerTest, ReleaseAssertionIsInstanceSpecific) {
  RequestContext first;
  first.assertion = 5;
  first.assertion_instance = 1;
  RequestContext second;
  second.assertion = 5;
  second.assertion_instance = 2;
  lm_.GrantUnconditional(1, item_, LockMode::kAssert, first);
  lm_.GrantUnconditional(1, item_, LockMode::kAssert, second);
  lm_.ReleaseAssertion(1, 5, 1);
  EXPECT_TRUE(lm_.HoldsAssertion(1, item_, 5));  // Instance 2 survives.
  lm_.ReleaseAssertion(1, 5, 2);
  EXPECT_FALSE(lm_.HoldsAssertion(1, item_, 5));
}

TEST_F(LockManagerTest, ReleaseConventionalKeepsAssertional) {
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(1, item_, LockMode::kAssert, actx);
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  lm_.ReleaseConventional(1);
  EXPECT_FALSE(lm_.Holds(1, item_, LockMode::kX));
  EXPECT_TRUE(lm_.HoldsAssertion(1, item_, 5));
}

TEST_F(LockManagerTest, CompLockInvisibleToAnalyzedVisibleToLegacy) {
  EXPECT_EQ(Req(1, item_, LockMode::kComp), Outcome::kGranted);
  RequestContext analyzed;  // analyzed = true by default.
  EXPECT_EQ(Req(2, item_, LockMode::kS, analyzed), Outcome::kGranted);
  RequestContext legacy;
  legacy.analyzed = false;
  EXPECT_EQ(Req(3, item_, LockMode::kS, legacy), Outcome::kWaiting);
  lm_.ReleaseAll(1);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{3});
}

TEST_F(LockManagerTest, CancelWaiterUnblocksThoseBehind) {
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(3, item_, LockMode::kS), Outcome::kWaiting);
  lm_.CancelWaiter(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{3});
}

TEST_F(LockManagerTest, StatsCountBasics) {
  Req(1, item_, LockMode::kS);
  Req(2, item_, LockMode::kX);
  lm_.ReleaseAll(1);
  const LockManager::Stats& stats = lm_.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.immediate_grants, 1u);
  EXPECT_EQ(stats.waits, 1u);
}

// Pin the full stats picture for the canonical two-txn deadlock: exactly
// one deadlock, exactly one victim abort (the requester), no double count.
TEST_F(LockManagerTest, TwoTxnDeadlockStatsPinned) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item2_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kAborted);
  const LockManager::Stats& stats = lm_.stats();
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.immediate_grants, 2u);
  // The aborted requester does not count as a wait; only txn 1 waits.
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.deadlocks, 1u);
  EXPECT_EQ(stats.deadlock_victim_aborts, 1u);
  // Both blocked requests were X-vs-X: exclusive class, conv-vs-conv kind.
  EXPECT_EQ(stats.blocks_by_class[static_cast<int>(WaitClass::kExclusive)],
            2u);
  EXPECT_EQ(stats.conv_conv_blocks, 2u);
  EXPECT_EQ(stats.write_assert_blocks, 0u);
  EXPECT_EQ(stats.assert_write_blocks, 0u);
}

// A compensation-priority resolution aborts the *other* cycle member; that
// victim must be counted exactly once.
TEST_F(LockManagerTest, CompensationVictimCountedOnce) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);
  RequestContext comp;
  comp.for_compensation = true;
  EXPECT_EQ(Req(1, item2_, LockMode::kX, comp), Outcome::kWaiting);
  EXPECT_EQ(listener_.aborted, std::vector<TxnId>{2});
  EXPECT_EQ(lm_.stats().deadlocks, 1u);
  EXPECT_EQ(lm_.stats().deadlock_victim_aborts, 1u);
  EXPECT_EQ(lm_.stats().compensation_priority_aborts, 1u);
}

// ResetStats must zero every counter so per-repetition collection does not
// accumulate across runs; re-running the same workload must reproduce the
// same counts, not double them.
TEST_F(LockManagerTest, ResetStatsClearsEverything) {
  auto run_once = [&] {
    EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
    EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
    lm_.RecordWaitTime(LockMode::kS, 0.25);
    lm_.ReleaseAll(1);
    lm_.ReleaseAll(2);
  };
  run_once();
  const LockManager::Stats first = lm_.stats();
  EXPECT_EQ(first.waits, 1u);
  EXPECT_DOUBLE_EQ(
      first.wait_seconds_by_class[static_cast<int>(WaitClass::kShared)], 0.25);
  EXPECT_EQ(first.queue_depth_sum, 1u);
  EXPECT_EQ(first.queue_depth_max, 1u);

  lm_.ResetStats();
  const LockManager::Stats& zeroed = lm_.stats();
  EXPECT_EQ(zeroed.requests, 0u);
  EXPECT_EQ(zeroed.waits, 0u);
  EXPECT_EQ(zeroed.deadlocks, 0u);
  EXPECT_EQ(zeroed.deadlock_victim_aborts, 0u);
  EXPECT_EQ(zeroed.queue_depth_sum, 0u);
  EXPECT_EQ(zeroed.queue_depth_max, 0u);
  for (int c = 0; c < kNumWaitClasses; ++c) {
    EXPECT_EQ(zeroed.blocks_by_class[c], 0u);
    EXPECT_DOUBLE_EQ(zeroed.wait_seconds_by_class[c], 0.0);
  }

  run_once();
  const LockManager::Stats& second = lm_.stats();
  EXPECT_EQ(second.requests, first.requests);
  EXPECT_EQ(second.waits, first.waits);
  EXPECT_EQ(second.blocks_by_class[static_cast<int>(WaitClass::kShared)],
            first.blocks_by_class[static_cast<int>(WaitClass::kShared)]);
  EXPECT_DOUBLE_EQ(
      second.wait_seconds_by_class[static_cast<int>(WaitClass::kShared)],
      first.wait_seconds_by_class[static_cast<int>(WaitClass::kShared)]);
}

// Blocked time and block counts attribute to the requested mode's wait
// class, and the conflict kind classifies by requester vs first blocker.
TEST_F(LockManagerTest, BlockAttributionByClassAndKind) {
  // S blocked by X holder: shared class, conv-vs-conv kind.
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
  // Foreign write blocked by an assertional holder: write-vs-assert kind.
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(3, item2_, LockMode::kAssert, actx);
  EXPECT_EQ(Req(4, item2_, LockMode::kX), Outcome::kWaiting);
  // Assertional request blocked by a foreign writer: assert-vs-write kind.
  ItemId item3 = ItemId::Row(1, 30);
  EXPECT_EQ(Req(5, item3, LockMode::kX), Outcome::kGranted);
  RequestContext actx2;
  actx2.assertion = 6;
  EXPECT_EQ(Req(6, item3, LockMode::kAssert, actx2), Outcome::kWaiting);

  const LockManager::Stats& stats = lm_.stats();
  EXPECT_EQ(stats.blocks_by_class[static_cast<int>(WaitClass::kShared)], 1u);
  EXPECT_EQ(stats.blocks_by_class[static_cast<int>(WaitClass::kExclusive)],
            1u);
  EXPECT_EQ(stats.blocks_by_class[static_cast<int>(WaitClass::kAssert)], 1u);
  EXPECT_EQ(stats.conv_conv_blocks, 1u);
  EXPECT_EQ(stats.write_assert_blocks, 1u);
  EXPECT_EQ(stats.assert_write_blocks, 1u);

  lm_.RecordWaitTime(LockMode::kS, 0.5);
  lm_.RecordWaitTime(LockMode::kX, 1.5);
  lm_.RecordWaitTime(LockMode::kAssert, 2.0);
  // stats() is a merged snapshot of the counter shards; re-fetch.
  const LockManager::Stats after = lm_.stats();
  EXPECT_DOUBLE_EQ(
      after.wait_seconds_by_class[static_cast<int>(WaitClass::kShared)], 0.5);
  EXPECT_DOUBLE_EQ(
      after.wait_seconds_by_class[static_cast<int>(WaitClass::kExclusive)],
      1.5);
  EXPECT_DOUBLE_EQ(
      after.wait_seconds_by_class[static_cast<int>(WaitClass::kAssert)], 2.0);
}

// Queue depth is sampled at enqueue time: depth after insertion.
TEST_F(LockManagerTest, QueueDepthStats) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kWaiting);  // Depth 1.
  EXPECT_EQ(Req(3, item_, LockMode::kX), Outcome::kWaiting);  // Depth 2.
  EXPECT_EQ(Req(4, item_, LockMode::kX), Outcome::kWaiting);  // Depth 3.
  EXPECT_EQ(lm_.stats().queue_depth_sum, 6u);
  EXPECT_EQ(lm_.stats().queue_depth_max, 3u);
}

// --- Per-transaction holder index (release fast paths) ---
//
// ReleaseConventional / ReleaseAssertion / ReleaseAll walk the per-txn
// holder index instead of scanning every item's holder vector; these tests
// pin the index to the lock table through merges, upgrades, partial
// releases and deadlock aborts via CheckIndexConsistency().

TEST_F(LockManagerTest, ReleaseConventionalManyItemsLeavesAssertions) {
  RequestContext actx;
  actx.assertion = 5;
  for (uint64_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(Req(1, ItemId::Row(1, k), LockMode::kS), Outcome::kGranted);
  }
  lm_.GrantUnconditional(1, ItemId::Row(2, 1), LockMode::kAssert, actx);
  lm_.GrantUnconditional(1, ItemId::Row(2, 2), LockMode::kAssert, actx);
  lm_.ReleaseConventional(1);
  for (uint64_t k = 1; k <= 16; ++k) {
    EXPECT_EQ(lm_.HolderCount(ItemId::Row(1, k)), 0u);
  }
  EXPECT_TRUE(lm_.HoldsAssertion(1, ItemId::Row(2, 1), 5));
  EXPECT_TRUE(lm_.HoldsAssertion(1, ItemId::Row(2, 2), 5));
  std::string violation;
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
  lm_.ReleaseAll(1);
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
}

TEST_F(LockManagerTest, ReleaseAssertionSkipsConventionalItems) {
  // Conventional locks on many items; assertional instances on two. The
  // instance-specific release must leave every conventional lock (and the
  // other instance) in place.
  for (uint64_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(Req(1, ItemId::Row(1, k), LockMode::kX), Outcome::kGranted);
  }
  RequestContext first;
  first.assertion = 5;
  first.assertion_instance = 1;
  RequestContext second;
  second.assertion = 5;
  second.assertion_instance = 2;
  lm_.GrantUnconditional(1, ItemId::Row(1, 1), LockMode::kAssert, first);
  lm_.GrantUnconditional(1, ItemId::Row(2, 1), LockMode::kAssert, second);
  lm_.ReleaseAssertion(1, 5, 1);
  EXPECT_FALSE(lm_.HoldsAssertion(1, ItemId::Row(1, 1), 5));
  EXPECT_TRUE(lm_.HoldsAssertion(1, ItemId::Row(2, 1), 5));
  for (uint64_t k = 1; k <= 8; ++k) {
    EXPECT_TRUE(lm_.Holds(1, ItemId::Row(1, k), LockMode::kX));
  }
  std::string violation;
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
}

TEST_F(LockManagerTest, IndexSurvivesMergeAndUpgrade) {
  // Repeated conventional requests on one item merge into a single holder
  // entry; the index must keep counting it as one.
  EXPECT_EQ(Req(1, item_, LockMode::kIS), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kS), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_, LockMode::kIX), Outcome::kGranted);  // -> SIX.
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);   // Upgrade.
  EXPECT_EQ(lm_.HolderCount(item_), 1u);
  std::string violation;
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
  lm_.ReleaseConventional(1);
  EXPECT_EQ(lm_.HolderCount(item_), 0u);
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
}

TEST_F(LockManagerTest, IndexConsistentThroughDeadlockAbort) {
  EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item2_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(Req(2, item_, LockMode::kX), Outcome::kAborted);
  std::string violation;
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
  lm_.ReleaseAll(2);
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
  lm_.ReleaseAll(1);
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
}

TEST_F(LockManagerTest, ItemSlotRecyclingKeepsSemantics) {
  // Drain an item completely, then reuse it: the recycled slot must not
  // leak holders, queue entries, or stale index state.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(Req(1, item_, LockMode::kX), Outcome::kGranted);
    EXPECT_EQ(Req(2, item_, LockMode::kS), Outcome::kWaiting);
    lm_.ReleaseAll(1);
    EXPECT_TRUE(lm_.Holds(2, item_, LockMode::kS));
    lm_.ReleaseAll(2);
    EXPECT_EQ(lm_.HolderCount(item_), 0u);
    EXPECT_EQ(lm_.QueueLength(item_), 0u);
  }
  std::string violation;
  EXPECT_TRUE(lm_.CheckIndexConsistency(&violation)) << violation;
}

// --- Conventional bitmask fast path ---

TEST(ConflictBitmaskTest, MatchesMatrixSemantics) {
  const LockMode modes[5] = {LockMode::kIS, LockMode::kIX, LockMode::kS,
                             LockMode::kSIX, LockMode::kX};
  MatrixConflictResolver resolver;
  RequestContext hctx;
  RequestContext rctx;
  for (LockMode a : modes) {
    for (LockMode b : modes) {
      HolderView holder{1, a, &hctx};
      RequestView request{2, b, &rctx, false};
      EXPECT_EQ(ConventionalModesConflict(a, b),
                resolver.Conflicts(holder, request))
          << "held=" << static_cast<int>(a)
          << " requested=" << static_cast<int>(b);
    }
  }
}

// --- CycleDetector unit ---

TEST(CycleDetectorTest, FindsSimpleCycle) {
  CycleDetector detector([](TxnId t) -> std::vector<TxnId> {
    if (t == 1) return {2};
    if (t == 2) return {3};
    if (t == 3) return {1};
    return {};
  });
  EXPECT_EQ(detector.FindCycle(1), (std::vector<TxnId>{1, 2, 3}));
}

TEST(CycleDetectorTest, NoCycleReturnsEmpty) {
  CycleDetector detector([](TxnId t) -> std::vector<TxnId> {
    if (t == 1) return {2, 3};
    return {};
  });
  EXPECT_TRUE(detector.FindCycle(1).empty());
}

TEST(CycleDetectorTest, IgnoresCycleNotThroughStart) {
  // 1 -> 2 <-> 3 : a cycle exists but not through 1.
  CycleDetector detector([](TxnId t) -> std::vector<TxnId> {
    if (t == 1) return {2};
    if (t == 2) return {3};
    if (t == 3) return {2};
    return {};
  });
  EXPECT_TRUE(detector.FindCycle(1).empty());
}

}  // namespace
}  // namespace accdb::lock
