// Concurrent TPC-C: the workload driver end-to-end, plus targeted
// interleaving scenarios reproducing the paper's Section 5.1 claims.

#include <gtest/gtest.h>

#include <memory>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/recovery.h"
#include "acc/sim_env.h"
#include "lock/conflict.h"
#include "sim/simulation.h"
#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/driver.h"
#include "tpcc/loader.h"
#include "tpcc/transactions.h"

namespace accdb::tpcc {
namespace {

using acc::ExecMode;
using acc::ExecResult;
using storage::Key;

WorkloadConfig SmallConfig(bool decomposed, uint64_t seed) {
  WorkloadConfig config;
  config.mode = decomposed ? ExecMode::kAccDecomposed : ExecMode::kSerializable;
  config.terminals = 8;
  config.servers = 2;
  config.sim_seconds = 30;
  config.seed = seed;
  config.mean_think_seconds = 0.2;
  config.keying_seconds = 0.05;
  config.inputs.scale = ScaleConfig::Test();
  return config;
}

class WorkloadTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(BothSystems, WorkloadTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Acc" : "Serializable";
                         });

TEST_P(WorkloadTest, RunsAndStaysConsistent) {
  WorkloadResult result = RunWorkload(SmallConfig(GetParam(), 11));
  EXPECT_GT(result.completed, 200u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.response_all.mean(), 0.0);
  // The 1% rollbacks happened.
  EXPECT_GT(result.aborted, 0u);
}

TEST_P(WorkloadTest, DeterministicForSeed) {
  WorkloadResult a = RunWorkload(SmallConfig(GetParam(), 29));
  WorkloadResult b = RunWorkload(SmallConfig(GetParam(), 29));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_DOUBLE_EQ(a.response_all.mean(), b.response_all.mean());
  EXPECT_EQ(a.lock_stats.requests, b.lock_stats.requests);
}

TEST_P(WorkloadTest, DifferentSeedsDiffer) {
  WorkloadResult a = RunWorkload(SmallConfig(GetParam(), 1));
  WorkloadResult b = RunWorkload(SmallConfig(GetParam(), 2));
  EXPECT_NE(a.lock_stats.requests, b.lock_stats.requests);
}

TEST(WorkloadComparisonTest, AccUsesAssertionalMachinery) {
  WorkloadResult acc_result = RunWorkload(SmallConfig(true, 5));
  WorkloadResult ser_result = RunWorkload(SmallConfig(false, 5));
  EXPECT_GT(acc_result.lock_stats.unconditional_grants, 0u);
  EXPECT_EQ(ser_result.lock_stats.unconditional_grants, 0u);
  EXPECT_TRUE(acc_result.consistent) << acc_result.first_violation;
  EXPECT_TRUE(ser_result.consistent) << ser_result.first_violation;
}

TEST(WorkloadComparisonTest, AccReducesLockWaitingUnderContention) {
  // High contention: many terminals, skewed districts, client compute time.
  auto config = [](bool decomposed) {
    WorkloadConfig c = SmallConfig(decomposed, 17);
    c.terminals = 24;
    c.servers = 4;
    c.sim_seconds = 40;
    c.mean_think_seconds = 0.1;
    c.compute_seconds = 0.003;
    c.inputs.skew_districts = true;
    c.inputs.hot_districts = 1;
    c.inputs.hot_fraction = 0.7;
    return c;
  };
  WorkloadResult acc_result = RunWorkload(config(true));
  WorkloadResult ser_result = RunWorkload(config(false));
  ASSERT_TRUE(acc_result.consistent) << acc_result.first_violation;
  ASSERT_TRUE(ser_result.consistent) << ser_result.first_violation;
  // The headline effect: under contention the ACC waits far less and
  // responds faster.
  EXPECT_LT(acc_result.total_lock_wait, ser_result.total_lock_wait);
  EXPECT_LT(acc_result.response_all.mean(), ser_result.response_all.mean());
}

// --- Targeted interleavings ---

class InterleavingTest : public ::testing::Test {
 protected:
  InterleavingTest() : db_(&database_), acc_resolver_(&db_.interference) {
    LoadDatabase(db_, ScaleConfig::Test(), /*seed=*/3);
    acc::EngineConfig config;
    config.charge_acc_overheads = false;
    acc_engine_ = std::make_unique<acc::Engine>(&database_, &acc_resolver_,
                                                config);
    ser_engine_ = std::make_unique<acc::Engine>(&database_,
                                                &matrix_resolver_, config);
  }

  storage::Database database_;
  TpccDb db_;
  lock::MatrixConflictResolver matrix_resolver_;
  acc::AccConflictResolver acc_resolver_;
  std::unique_ptr<acc::Engine> acc_engine_;
  std::unique_ptr<acc::Engine> ser_engine_;
};

// "The design-time analysis is capable of recognizing that updates to the
// counter and the year-to-date payment field do not interfere and hence
// allows transactions of these two types, within the same district, to
// interleave": a payment arriving mid-new-order in the same district
// completes immediately under the ACC and only after the new-order under
// two-phase locking.
TEST_F(InterleavingTest, PaymentInterleavesWithNewOrderInSameDistrict) {
  for (bool decomposed : {true, false}) {
    acc::Engine* engine =
        decomposed ? acc_engine_.get() : ser_engine_.get();
    ExecMode mode = decomposed ? ExecMode::kAccDecomposed
                               : ExecMode::kSerializable;
    sim::Simulation sim;
    acc::SimExecutionEnv env_no(sim, nullptr), env_p(sim, nullptr);

    NewOrderInput no_input;
    no_input.w_id = 1;
    no_input.d_id = 1;
    no_input.c_id = 1;
    no_input.lines = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
    // Long new-order: compute time between statements.
    NewOrderTxn no_txn(&db_, no_input, /*compute_seconds=*/0.01);

    PaymentInput p_input;
    p_input.w_id = 1;
    p_input.d_id = 1;  // Same district: the hot-spot conflict.
    p_input.c_w_id = 1;
    p_input.c_d_id = 1;
    p_input.by_last_name = false;
    p_input.c_id = 7;
    p_input.amount = Money::FromDollars(20);
    PaymentTxn p_txn(&db_, p_input);

    double no_done = -1, p_done = -1;
    ExecResult r_no, r_p;
    sim.Spawn("no", [&] {
      r_no = engine->Execute(no_txn, env_no, mode);
      no_done = sim.Now();
    });
    sim.Spawn("p", [&] {
      sim.Delay(0.06);  // The new-order holds the district "lock" by now.
      r_p = engine->Execute(p_txn, env_p, mode);
      p_done = sim.Now();
    });
    sim.Run();
    ASSERT_TRUE(r_no.status.ok());
    ASSERT_TRUE(r_p.status.ok());
    if (decomposed) {
      // ACC: payment slipped through mid-new-order.
      EXPECT_LT(p_done, no_done) << "ACC should interleave";
    } else {
      // 2PL: payment waited for the new-order's district lock.
      EXPECT_GT(p_done, no_done) << "2PL should serialize";
    }
    ConsistencyReport report = CheckConsistency(db_, /*strict=*/true);
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0]);
  }
}

// order-status on the customer's in-flight order waits for its completion
// (the completeness conjunct is its precondition); on other customers it
// proceeds immediately.
TEST_F(InterleavingTest, OrderStatusWaitsForInFlightOrderOnly) {
  sim::Simulation sim;
  acc::SimExecutionEnv env_no(sim, nullptr), env_same(sim, nullptr),
      env_other(sim, nullptr);

  NewOrderInput no_input;
  no_input.w_id = 1;
  no_input.d_id = 2;
  no_input.c_id = 4;
  no_input.lines = {{1, 1}, {2, 1}, {3, 1}, {4, 1}, {5, 1}};
  NewOrderTxn no_txn(&db_, no_input, /*compute_seconds=*/0.01);

  OrderStatusInput same_input;
  same_input.w_id = 1;
  same_input.d_id = 2;
  same_input.by_last_name = false;
  same_input.c_id = 4;  // The in-flight order's customer.
  OrderStatusTxn same_txn(&db_, same_input);

  OrderStatusInput other_input = same_input;
  other_input.c_id = 9;  // A different customer.
  OrderStatusTxn other_txn(&db_, other_input);

  double no_done = -1, same_done = -1, other_done = -1;
  ExecResult r_no, r_same, r_other;
  sim.Spawn("no", [&] {
    r_no = acc_engine_->Execute(no_txn, env_no, ExecMode::kAccDecomposed);
    no_done = sim.Now();
  });
  sim.Spawn("same", [&] {
    sim.Delay(0.08);  // After NO1 created the order, mid NO2 loop.
    r_same = acc_engine_->Execute(same_txn, env_same,
                                  ExecMode::kAccDecomposed);
    same_done = sim.Now();
  });
  sim.Spawn("other", [&] {
    sim.Delay(0.08);
    r_other = acc_engine_->Execute(other_txn, env_other,
                                   ExecMode::kAccDecomposed);
    other_done = sim.Now();
  });
  sim.Run();
  ASSERT_TRUE(r_no.status.ok());
  ASSERT_TRUE(r_same.status.ok());
  ASSERT_TRUE(r_other.status.ok());
  // The same-customer report waited for the new-order; it reports the
  // complete order.
  EXPECT_GT(same_done, no_done);
  ASSERT_TRUE(same_txn.found_order());
  EXPECT_EQ(same_txn.last_order_id(), no_txn.order_id());
  EXPECT_EQ(same_txn.line_count(), 5);
  EXPECT_EQ(same_txn.order_line_count_field(), 5);
  // The other-customer report did not wait.
  EXPECT_LT(other_done, no_done);
}

// Crash recovery across the three multi-step types.
TEST_F(InterleavingTest, CrashRecoveryWithRegisteredCompensators) {
  sim::Simulation sim;
  acc::SimExecutionEnv env(sim, nullptr);
  sim::Signal never(sim);

  // A new-order that commits a forward prefix (all steps of a shorter
  // order) and then hangs without committing: the simulation drains with
  // the transaction in flight, modelling a crash between steps. The
  // engine's end-of-step records carry the inner program's work area, so
  // recovery can compensate it.
  class HangingNewOrder : public NewOrderTxn {
   public:
    HangingNewOrder(TpccDb* db, NewOrderInput input, sim::Simulation* sim,
                    sim::Signal* crash)
        : NewOrderTxn(db, input),
          tpcc_db_(db),
          full_input_(std::move(input)),
          sim_(sim),
          crash_(crash) {}
    Status Run(acc::TxnContext& ctx) override {
      // Execute the forward steps of a truncated order (one line less than
      // promised is irrelevant here — the point is the commit record never
      // lands), then hang at the crash point.
      NewOrderInput truncated = full_input_;
      truncated.lines.pop_back();
      partial_ = std::make_unique<NewOrderTxn>(tpcc_db_, truncated);
      Status status = partial_->Run(ctx);
      order_id_from_partial_ = partial_->order_id();
      if (!status.ok()) return status;
      sim_->WaitSignal(*crash_);
      return Status::Internal("unreachable");
    }
    std::string SerializeWorkArea() const override {
      return partial_ != nullptr ? partial_->SerializeWorkArea() : "0 0 0";
    }

    TpccDb* tpcc_db_;
    NewOrderInput full_input_;
    std::unique_ptr<NewOrderTxn> partial_;
    int64_t order_id_from_partial_ = 0;
    sim::Simulation* sim_;
    sim::Signal* crash_;
  };

  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 5;
  input.c_id = 2;
  input.lines = {{1, 1}, {2, 1}, {3, 1}};
  HangingNewOrder hanging(&db_, input, &sim, &never);
  sim.Spawn("t", [&] {
    (void)acc_engine_->Execute(hanging, env, ExecMode::kAccDecomposed);
  });
  sim.Run();

  // The partial order is in the database.
  int64_t o = hanging.order_id_from_partial_;
  ASSERT_GT(o, 0);
  EXPECT_TRUE(db_.orders->LookupPk(Key(1, 5, o)).has_value());

  // Crash and recover.
  acc::RecoveryLog log = acc_engine_->recovery_log();
  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  acc::Engine fresh(&database_, &acc_resolver_, config);
  acc::CompensatorRegistry registry;
  RegisterTpccCompensators(&db_, &registry);
  acc::ImmediateEnv recovery_env;
  acc::RecoveryReport report =
      acc::RunRecovery(fresh, log, registry, recovery_env);
  EXPECT_GE(report.in_flight, 1);
  EXPECT_EQ(report.compensated, report.in_flight);
  EXPECT_EQ(report.missing_compensator, 0);
  // The partial order is gone and the database is consistent again
  // (non-strict: an order number was consumed).
  EXPECT_FALSE(db_.orders->LookupPk(Key(1, 5, o)).has_value());
  ConsistencyReport consistency = CheckConsistency(db_, /*strict=*/false);
  EXPECT_TRUE(consistency.ok) << (consistency.violations.empty()
                                      ? ""
                                      : consistency.violations[0]);
}

}  // namespace
}  // namespace accdb::tpcc
