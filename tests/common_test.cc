#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/money.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace accdb {
namespace {

// --- Money ---

TEST(MoneyTest, DefaultIsZero) {
  EXPECT_EQ(Money().cents(), 0);
  EXPECT_EQ(Money().ToString(), "0.00");
}

TEST(MoneyTest, FromDollarsAndCents) {
  EXPECT_EQ(Money::FromDollars(3).cents(), 300);
  EXPECT_EQ(Money::FromCents(12345).ToString(), "123.45");
}

TEST(MoneyTest, FromDoubleRounds) {
  EXPECT_EQ(Money::FromDouble(1.0051).cents(), 101);
  EXPECT_EQ(Money::FromDouble(-1.0051).cents(), -101);
  EXPECT_EQ(Money::FromDouble(2.499).cents(), 250);
  // 0.1 + 0.2 != 0.3 in binary; rounding absorbs the representation error.
  EXPECT_EQ(Money::FromDouble(0.1 + 0.2).cents(), 30);
}

TEST(MoneyTest, Arithmetic) {
  Money a = Money::FromCents(150);
  Money b = Money::FromCents(75);
  EXPECT_EQ((a + b).cents(), 225);
  EXPECT_EQ((a - b).cents(), 75);
  EXPECT_EQ((a * 3).cents(), 450);
  EXPECT_EQ((-a).cents(), -150);
  a += b;
  EXPECT_EQ(a.cents(), 225);
  a -= b;
  EXPECT_EQ(a.cents(), 150);
}

TEST(MoneyTest, Comparisons) {
  EXPECT_LT(Money::FromCents(1), Money::FromCents(2));
  EXPECT_EQ(Money::FromCents(2), Money::FromCents(2));
  EXPECT_GT(Money::FromCents(3), Money::FromCents(2));
}

TEST(MoneyTest, NegativeToString) {
  EXPECT_EQ(Money::FromCents(-5).ToString(), "-0.05");
  EXPECT_EQ(Money::FromCents(-12300).ToString(), "-123.00");
}

// --- Status / Result ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: thing");
  EXPECT_EQ(Status::Deadlock("x").code(), StatusCode::kDeadlock);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::WouldBlock("x").code(), StatusCode::kWouldBlock);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status Propagates(bool fail) {
  ACCDB_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInternal);
}

Status AssignOrReturn(bool fail, int* out) {
  auto make = [&]() -> Result<int> {
    if (fail) return Status::NotFound("no");
    return 7;
  };
  ACCDB_ASSIGN_OR_RETURN(int v, make());
  *out = v;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(AssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(AssignOrReturn(true, &out).code(), StatusCode::kNotFound);
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnit) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkIndependent) {
  Rng a(21);
  Rng b = a.Fork();
  // The fork advanced `a`; streams should differ.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, AlnumStringLengths) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlnumString(4, 8);
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 8u);
  }
}

TEST(NuRandTest, StaysInRange) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = NuRand(rng, 255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(NuRandTest, IsNonUniform) {
  // NURand concentrates mass; the most popular value should appear far more
  // often than 1/n.
  Rng rng(33);
  std::map<int64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[NuRand(rng, 255, 0, 999, 7)];
  int max_count = 0;
  for (const auto& [v, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3 * n / 1000);
}

TEST(HotSpotTest, SkewConcentratesOnHotSet) {
  Rng rng(37);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (HotSpotChoice(rng, 10, 2, 0.8) < 2) ++hot;
  }
  EXPECT_NEAR(static_cast<double>(hot) / n, 0.8, 0.01);
}

TEST(HotSpotTest, UniformWhenAllHot) {
  Rng rng(39);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[HotSpotChoice(rng, 5, 5, 0.9)];
  EXPECT_EQ(counts.size(), 5u);
}

TEST(HotSpotTest, ZeroHotCountDegradesToUniform) {
  // hot_count == 0 used to draw UniformInt(0, -1) whenever the Bernoulli
  // came up hot — UB/assert. It must behave as a plain uniform choice.
  Rng rng(43);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[HotSpotChoice(rng, 5, 0, 0.9)];
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [value, n] : counts) {
    EXPECT_GE(value, 0);
    EXPECT_LT(value, 5);
    EXPECT_NEAR(static_cast<double>(n) / 10000, 0.2, 0.05);
  }
}

TEST(HotSpotTest, HotCountClampedToN) {
  // hot_count > n clamps to n: a uniform draw over the full range.
  Rng rng(47);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[HotSpotChoice(rng, 4, 99, 0.9)];
  EXPECT_EQ(counts.size(), 4u);
  // Negative hot_count clamps to 0 (uniform) rather than crashing.
  for (int i = 0; i < 100; ++i) {
    int64_t v = HotSpotChoice(rng, 4, -3, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
}

TEST(HotSpotTest, HotFractionClampedToUnitInterval) {
  Rng rng(53);
  // > 1 clamps to 1: every draw lands in the hot set.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(HotSpotChoice(rng, 10, 2, 1.5), 2);
  }
  // < 0 clamps to 0: every draw lands in the cold remainder.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(HotSpotChoice(rng, 10, 2, -0.5), 2);
  }
}

TEST(ZipfTest, MonotoneDecreasingMass) {
  Rng rng(41);
  ZipfGenerator zipf(100, 0.9);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 5 * counts[99]);
}

// --- String utils ---

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ab"), "x=3 y=ab");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

TEST(StringUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
}

// --- Json ---

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(-42).Dump(), "-42");
  EXPECT_EQ(Json(uint64_t{18446744073709551615u}).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(1.5).Dump(), "1.5");
}

TEST(JsonTest, DumpEscapesStrings) {
  EXPECT_EQ(Json("a\"b\\c\n\t").Dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, NanDumpsAsNull) {
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
}

TEST(JsonTest, InfinityDumpsAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).Dump(), "null");
}

TEST(JsonTest, NonFiniteRoundTripsAsNull) {
  // Empty-metric percentiles are NaN; they must dump as null and parse back
  // as JSON null (not fail the parse or resurrect as 0.0).
  Json obj = Json::Object();
  obj["p95"] = std::nan("");
  obj["hi"] = std::numeric_limits<double>::infinity();
  obj["n"] = 0;
  std::string text = obj.Dump();
  EXPECT_EQ(text, "{\"p95\":null,\"hi\":null,\"n\":0}");
  std::string error;
  std::optional<Json> parsed = Json::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->Find("p95")->is_null());
  EXPECT_TRUE(parsed->Find("hi")->is_null());
  EXPECT_EQ(parsed->Find("n")->AsInt(), 0);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::Object();
  obj["zeta"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = Json::Array();
  obj["mid"].Append(3);
  EXPECT_EQ(obj.Dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":[3]}");
  ASSERT_TRUE(obj.Has("alpha"));
  EXPECT_EQ(obj.Find("alpha")->AsInt(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonTest, PrettyPrintIndents) {
  Json obj = Json::Object();
  obj["a"] = 1;
  EXPECT_EQ(obj.Dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonTest, ParseRoundTrip) {
  Json obj = Json::Object();
  obj["name"] = "bench";
  obj["jobs"] = 4;
  obj["ratio"] = 1.25;
  obj["ok"] = true;
  obj["nothing"] = Json();
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append(-2);
  arr.Append("three");
  obj["values"] = std::move(arr);
  std::string text = obj.Dump(2);
  std::string error;
  std::optional<Json> parsed = Json::Parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Dump(2), text);
  EXPECT_EQ(parsed->Find("jobs")->AsInt(), 4);
  EXPECT_DOUBLE_EQ(parsed->Find("ratio")->AsDouble(), 1.25);
  EXPECT_EQ(parsed->Find("values")->size(), 3u);
  EXPECT_EQ(parsed->Find("values")->at(2).AsString(), "three");
}

TEST(JsonTest, ParseUnicodeEscape) {
  std::optional<Json> parsed = Json::Parse("\"a\\u00e9b\"");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AsString(),
            "a\xc3\xa9"
            "b");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::Parse("{\"a\":}", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(Json::Parse("[1,2,]").has_value());
  EXPECT_FALSE(Json::Parse("true extra").has_value());
  EXPECT_FALSE(Json::Parse("").has_value());
  EXPECT_FALSE(Json::Parse("nul").has_value());
}

TEST(JsonTest, ParseNumbers) {
  EXPECT_EQ(Json::Parse("-9223372036854775808")->AsInt(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(Json::Parse("18446744073709551615")->AsUint(),
            18446744073709551615u);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::Parse("-0.5")->AsDouble(), -0.5);
}

// --- ThreadPool ---

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  // The pool is reusable after Wait().
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPoolTest, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, HardwareDefaultIsPositive) {
  EXPECT_GE(ThreadPool::HardwareDefault(), 1);
}

TEST(RunTasksTest, SerialPathRunsInOrder) {
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  RunTasks(1, std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RunTasksTest, ParallelPathRunsEveryTask) {
  std::atomic<uint64_t> mask{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&mask, i] { mask.fetch_or(uint64_t{1} << i); });
  }
  RunTasks(4, std::move(tasks));
  EXPECT_EQ(mask.load(), (uint64_t{1} << 32) - 1);
}

}  // namespace
}  // namespace accdb
