#include <gtest/gtest.h>

#include "acc/catalog.h"
#include "acc/conflict_resolver.h"
#include "acc/interference.h"
#include "acc/spec.h"
#include "acc/spec_derive.h"
#include "common/status.h"
#include "lock/types.h"
#include "orderproc/order_system.h"
#include "storage/database.h"
#include "tpcc/tpcc_db.h"

namespace accdb::acc {
namespace {

using lock::HolderView;
using lock::LockMode;
using lock::RequestContext;
using lock::RequestView;

// --- Catalog ---

TEST(CatalogTest, RegistersDistinctIds) {
  Catalog catalog;
  lock::ActorId s1 = catalog.RegisterStepType("s1");
  lock::ActorId p1 = catalog.RegisterPrefix("p1");
  lock::AssertionId a1 = catalog.RegisterAssertion("a1", 2);
  EXPECT_NE(s1, lock::kNoActor);
  EXPECT_NE(s1, p1);
  EXPECT_EQ(catalog.ActorName(s1), "s1");
  EXPECT_EQ(catalog.ActorName(p1), "p1");
  EXPECT_EQ(catalog.AssertionName(a1), "a1");
  EXPECT_EQ(catalog.AssertionKeyArity(a1), 2);
  EXPECT_TRUE(catalog.IsStepType(s1));
  EXPECT_FALSE(catalog.IsStepType(p1));
}

// --- InterferenceTable ---

class InterferenceTableTest : public ::testing::Test {
 protected:
  InterferenceTableTest() {
    step_ = catalog_.RegisterStepType("writer");
    other_step_ = catalog_.RegisterStepType("other");
    assertion_ = catalog_.RegisterAssertion("inv", 1);
  }

  Catalog catalog_;
  InterferenceTable table_;
  lock::ActorId step_, other_step_;
  lock::AssertionId assertion_;
};

TEST_F(InterferenceTableTest, DefaultIsConservative) {
  EXPECT_EQ(table_.Get(step_, assertion_), Interference::kAlways);
  EXPECT_TRUE(table_.Interferes(step_, {1}, assertion_, {2}));
}

TEST_F(InterferenceTableTest, NoneNeverInterferes) {
  table_.Set(step_, assertion_, Interference::kNone);
  EXPECT_FALSE(table_.Interferes(step_, {1}, assertion_, {1}));
  // Other steps stay conservative.
  EXPECT_TRUE(table_.Interferes(other_step_, {1}, assertion_, {1}));
}

TEST_F(InterferenceTableTest, SameKeyRefinement) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  EXPECT_TRUE(table_.Interferes(step_, {7}, assertion_, {7}));
  EXPECT_FALSE(table_.Interferes(step_, {7}, assertion_, {8}));
}

TEST_F(InterferenceTableTest, PrefixComparisonOverCommonLength) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  // Writer keys {w, d}; assertion keys {w, d, o}: same district conflicts.
  EXPECT_TRUE(table_.Interferes(step_, {1, 2}, assertion_, {1, 2, 99}));
  EXPECT_FALSE(table_.Interferes(step_, {1, 3}, assertion_, {1, 2, 99}));
}

TEST_F(InterferenceTableTest, EmptyKeysCannotRefine) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  EXPECT_TRUE(table_.Interferes(step_, {}, assertion_, {1}));
  EXPECT_TRUE(table_.Interferes(step_, {1}, assertion_, {}));
}

TEST_F(InterferenceTableTest, RefinementDisableDowngradesToAlways) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  table_.set_key_refinement(false);
  EXPECT_EQ(table_.Get(step_, assertion_), Interference::kAlways);
  EXPECT_TRUE(table_.Interferes(step_, {7}, assertion_, {8}));
  table_.set_key_refinement(true);
  EXPECT_FALSE(table_.Interferes(step_, {7}, assertion_, {8}));
}

// --- AccConflictResolver ---

class AccResolverTest : public ::testing::Test {
 protected:
  AccResolverTest() : resolver_(&table_) {
    step_ = catalog_.RegisterStepType("writer");
    prefix_ = catalog_.RegisterPrefix("partial");
    assertion_ = catalog_.RegisterAssertion("inv", 1);
    table_.Set(step_, assertion_, Interference::kIfSameKey);
    table_.Set(prefix_, assertion_, Interference::kIfSameKey);
  }

  RequestContext AssertCtx(int64_t key, lock::ActorId prefix) {
    RequestContext ctx;
    ctx.actor = prefix;
    ctx.assertion = assertion_;
    ctx.keys = {key};
    return ctx;
  }

  RequestContext WriterCtx(int64_t key) {
    RequestContext ctx;
    ctx.actor = step_;
    ctx.keys = {key};
    return ctx;
  }

  Catalog catalog_;
  InterferenceTable table_;
  AccConflictResolver resolver_;
  lock::ActorId step_, prefix_;
  lock::AssertionId assertion_;
};

TEST_F(AccResolverTest, WriteVsAssertSameKeyConflicts) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(7);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &req_ctx, false}));
}

TEST_F(AccResolverTest, WriteVsAssertDifferentKeyPasses) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(8);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &req_ctx, false}));
}

TEST_F(AccResolverTest, UnknownWriterStepConflicts) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext legacy;  // actor = kNoActor: not in the table.
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &legacy, false}));
}

TEST_F(AccResolverTest, ReadNeverConflictsWithAssert) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(7);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kS, &req_ctx, false}));
}

TEST_F(AccResolverTest, CompensationWithCompMarkerBypassesAssert) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext comp_ctx = WriterCtx(7);
  comp_ctx.for_compensation = true;
  // Without the kComp marker on the item, interference applies.
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &comp_ctx, false}));
  // With the marker (the compensating txn's forward steps wrote the item),
  // the compensating step never waits for assertional locks.
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &comp_ctx, true}));
}

TEST_F(AccResolverTest, AssertRequestChecksHolderPrefix) {
  // Holder: assertional lock whose owner's prefix interferes (same key).
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = AssertCtx(7, lock::kNoActor);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_ctx, false}));
  // Different key: the initiation check passes.
  RequestContext req_other = AssertCtx(8, lock::kNoActor);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_other, false}));
}

TEST_F(AccResolverTest, AssertRequestVsMidStepWriter) {
  RequestContext holder_ctx = WriterCtx(7);  // Mid-step X holder.
  RequestContext req_ctx = AssertCtx(7, lock::kNoActor);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kX, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_ctx, false}));
  RequestContext req_other = AssertCtx(9, lock::kNoActor);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kX, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_other, false}));
}

TEST_F(AccResolverTest, ConventionalFallsThroughToMatrix) {
  RequestContext a, b;
  EXPECT_TRUE(resolver_.Conflicts(HolderView{1, LockMode::kX, &a},
                                  RequestView{2, LockMode::kS, &b, false}));
  EXPECT_FALSE(resolver_.Conflicts(HolderView{1, LockMode::kS, &a},
                                   RequestView{2, LockMode::kS, &b, false}));
}

// --- Key-arity validation (InterferenceTable::set_catalog) ---

TEST_F(InterferenceTableTest, ArityBoundsTheComparedPrefix) {
  // assertion_ was registered with arity 1: only position 0 is a declared
  // discriminator. Without the catalog wired, the comparison treats the
  // actor's trailing key dimensions as if they discriminated the predicate.
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  table_.set_catalog(&catalog_);
  // An (erroneous, over-long) assertion key vector is conservative: a
  // malformed instance may not silently pass the initiation check.
  EXPECT_TRUE(table_.Interferes(step_, {5, 7}, assertion_, {5, 9}));
  // Actor keys longer than the assertion's arity are legitimate (the
  // actor's own trailing dimensions) — only position 0 is compared.
  EXPECT_TRUE(table_.Interferes(step_, {1, 2}, assertion_, {1}));
  EXPECT_FALSE(table_.Interferes(step_, {2, 2}, assertion_, {1}));
}

TEST_F(InterferenceTableTest, ArityDoesNotChangeWellFormedComparisons) {
  lock::AssertionId wide = catalog_.RegisterAssertion("wide", 3);
  table_.Set(step_, wide, Interference::kIfSameKey);
  table_.set_catalog(&catalog_);
  // Instances within the declared arity behave exactly as before.
  EXPECT_TRUE(table_.Interferes(step_, {1, 2}, wide, {1, 2, 99}));
  EXPECT_FALSE(table_.Interferes(step_, {1, 3}, wide, {1, 2, 99}));
  EXPECT_TRUE(table_.Interferes(step_, {}, wide, {1}));
}

// --- Derivation from specs (spec_derive.h) ---

// Minimal two-table schema for derivation tests: a "rows" table and a
// "side" table with a few columns each.
class SpecDeriveTest : public ::testing::Test {
 protected:
  SpecDeriveTest() {
    step_ = catalog_.RegisterStepType("writer");
    assert_ = catalog_.RegisterAssertion("inv", 2);
  }

  // An assertion over table 1, reading existence + column 2, keys {a, b}
  // both pinning.
  spec::AssertionSpec Inv() {
    spec::AssertionSpec q;
    q.decl = assert_;
    q.key_dims = {"a", "b"};
    q.footprint.push_back(
        {/*table=*/1, {spec::kExistence, 2}, /*key_positions=*/{0, 1}, {}});
    return q;
  }

  spec::StepSpec Step(std::vector<spec::WriteAccess> writes,
                      std::vector<std::string> dims = {"a", "b"}) {
    spec::StepSpec s;
    s.actor = step_;
    s.key_dims = std::move(dims);
    s.writes = std::move(writes);
    return s;
  }

  Catalog catalog_;
  lock::ActorId step_;
  lock::AssertionId assert_;
};

TEST_F(SpecDeriveTest, DisjointTablesDeriveNone) {
  spec::StepSpec s = Step({{/*table=*/9, spec::WriteKind::kInsert, {}, {0, 1},
                            spec::WriteScope::kShared, false}});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kNone);
}

TEST_F(SpecDeriveTest, DisjointColumnsDeriveNone) {
  // Mutating column 5 of table 1 cannot change a predicate over column 2
  // and row existence.
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {5}, {0, 1},
                            spec::WriteScope::kShared, false}});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kNone);
}

TEST_F(SpecDeriveTest, InsertOverlapsExistenceEvenWithNoColumns) {
  spec::StepSpec s = Step({{1, spec::WriteKind::kInsert, {}, {0, 1},
                            spec::WriteScope::kShared, false}});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kIfSameKey);
}

TEST_F(SpecDeriveTest, FullyPinnedOverlapDerivesIfSameKey) {
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {2}, {0, 1},
                            spec::WriteScope::kShared, false}});
  std::string why;
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv(), &why), Interference::kIfSameKey);
  EXPECT_FALSE(why.empty());
}

TEST_F(SpecDeriveTest, PartiallyPinnedOverlapDerivesAlways) {
  // The write pins only key position 0; position 1 of the common prefix
  // does not separate instances, so same-key refinement would be unsound
  // (Interferes proves disjointness from ANY differing common position).
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {2}, {0},
                            spec::WriteScope::kShared, false}});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kAlways);
}

TEST_F(SpecDeriveTest, MisalignedKeyDimsDeriveAlways) {
  // Step keys {x, b}: position 0 names a different dimension than the
  // assertion's, so positional comparison is meaningless.
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {2}, {0, 1},
                            spec::WriteScope::kShared, false}},
                          {"x", "b"});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kAlways);
}

TEST_F(SpecDeriveTest, CommutativeWriteToleratedByDeclaredColumns) {
  spec::AssertionSpec q;
  q.decl = assert_;
  q.key_dims = {"a", "b"};
  q.footprint.push_back({1, {2}, {0, 1}, /*commute_tolerant=*/{2}});
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {2}, {0, 1},
                            spec::WriteScope::kShared, /*commutative=*/true}});
  EXPECT_EQ(spec::DeriveStepEntry(s, q), Interference::kNone);
  // The same write as an arbitrary overwrite is charged.
  s.writes[0].commutative = false;
  EXPECT_EQ(spec::DeriveStepEntry(s, q), Interference::kIfSameKey);
}

TEST_F(SpecDeriveTest, FreshAndOwnScopesAreDischarged) {
  spec::StepSpec s = Step({{1, spec::WriteKind::kInsert, {}, {0, 1},
                            spec::WriteScope::kFresh, false}});
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kNone);
  s.writes[0].scope = spec::WriteScope::kOwn;
  EXPECT_EQ(spec::DeriveStepEntry(s, Inv()), Interference::kNone);
}

TEST_F(SpecDeriveTest, PrefixFoldsBreaksFromConstituentSteps) {
  lock::ActorId prefix = catalog_.RegisterPrefix("partial");
  lock::AssertionId keyless = catalog_.RegisterAssertion("keyless", 0);

  spec::SpecRegistry reg;
  spec::StepSpec s = Step({});
  s.breaks = {assert_};
  reg.DeclareStep(s);
  reg.DeclareAssertion(Inv());
  spec::AssertionSpec k;
  k.decl = keyless;
  reg.DeclareAssertion(k);
  spec::PrefixSpec p;
  p.actor = prefix;
  p.steps = {step_};
  reg.DeclarePrefix(p);

  // Keyed broken assertion folds to kIfSameKey (the holder's own instance).
  EXPECT_EQ(spec::DerivePrefixEntry(p, Inv(), reg),
            Interference::kIfSameKey);
  // A keyless broken assertion cannot be discriminated: kAlways.
  spec::SpecRegistry reg2;
  spec::StepSpec s2 = Step({});
  s2.breaks = {keyless};
  reg2.DeclareStep(s2);
  EXPECT_EQ(spec::DerivePrefixEntry(p, k, reg2), Interference::kAlways);
  // A prefix containing a step with no registered spec is conservative.
  spec::PrefixSpec unknown;
  unknown.actor = prefix;
  unknown.steps = {lock::ActorId{999}};
  EXPECT_EQ(spec::DerivePrefixEntry(unknown, Inv(), reg),
            Interference::kAlways);
  // A step that breaks nothing folds to kNone.
  spec::SpecRegistry reg3;
  reg3.DeclareStep(Step({}));
  EXPECT_EQ(spec::DerivePrefixEntry(p, Inv(), reg3), Interference::kNone);
}

TEST_F(SpecDeriveTest, CrossCheckNamesTheUnsoundPair) {
  spec::SpecRegistry registry;
  spec::StepSpec s = Step({{1, spec::WriteKind::kMutate, {2}, {0, 1},
                            spec::WriteScope::kShared, false}});
  registry.DeclareStep(s);
  registry.DeclareAssertion(Inv());

  InterferenceTable derived =
      spec::DeriveInterferenceTable(registry, catalog_);
  EXPECT_EQ(derived.GetRaw(step_, assert_), Interference::kIfSameKey);

  // Hand table claims kNone where the derivation requires kIfSameKey.
  InterferenceTable hand;
  hand.Set(step_, assert_, Interference::kNone);
  Status check =
      spec::CrossCheckInterference(hand, derived, registry, catalog_);
  ASSERT_FALSE(check.ok());
  EXPECT_NE(check.message().find("writer"), std::string::npos);
  EXPECT_NE(check.message().find("inv"), std::string::npos);

  // More conservative than required is fine.
  hand.Set(step_, assert_, Interference::kAlways);
  EXPECT_TRUE(
      spec::CrossCheckInterference(hand, derived, registry, catalog_).ok());
}

// --- System tables: derived == hand, pinned pair by pair ---

// Requires EXACT equality, not just soundness: the derivation reproduces
// the paper's analysis entry for entry. A derived entry more conservative
// than hand would fail construction; one LESS conservative here means the
// specs claim more freedom than the hand analysis and must be revisited.
template <typename System>
void ExpectDerivedMatchesHand(const System& system) {
  InterferenceTable derived =
      spec::DeriveInterferenceTable(system.specs, system.catalog);
  auto check = [&](lock::ActorId actor) {
    for (size_t q = 1; q <= system.catalog.assertion_count(); ++q) {
      lock::AssertionId assertion = static_cast<lock::AssertionId>(q);
      EXPECT_EQ(system.interference.GetRaw(actor, assertion),
                derived.GetRaw(actor, assertion))
          << "(" << system.catalog.ActorName(actor) << ", "
          << system.catalog.AssertionName(assertion) << ")";
    }
  };
  for (const spec::StepSpec& step : system.specs.steps()) check(step.actor);
  for (const spec::PrefixSpec& prefix : system.specs.prefixes()) {
    check(prefix.actor);
  }
}

TEST(SystemInterferenceTest, TpccDerivedMatchesHandExactly) {
  storage::Database db;
  tpcc::TpccDb tpcc(&db);
  ExpectDerivedMatchesHand(tpcc);
  // Every step, prefix, and assertion the catalog knows has a spec.
  EXPECT_EQ(tpcc.specs.steps().size() + tpcc.specs.prefixes().size(),
            tpcc.catalog.actor_count());
  EXPECT_EQ(tpcc.specs.assertions().size(), tpcc.catalog.assertion_count());
}

TEST(SystemInterferenceTest, OrderprocDerivedMatchesHandExactly) {
  storage::Database db;
  orderproc::OrderSystem system(&db);
  ExpectDerivedMatchesHand(system);
  EXPECT_EQ(system.specs.steps().size() + system.specs.prefixes().size(),
            system.catalog.actor_count());
  EXPECT_EQ(system.specs.assertions().size(),
            system.catalog.assertion_count());
}

TEST(SystemInterferenceTest, WeakenedTpccTableFailsCrossCheckByName) {
  storage::Database db;
  tpcc::TpccDb tpcc(&db);
  InterferenceTable derived =
      spec::DeriveInterferenceTable(tpcc.specs, tpcc.catalog);
  // Rebuild the hand table with the (d2, no_loop) entry weakened to kNone —
  // the bug the cross-check exists to catch (delivery pops the oldest
  // NEW-ORDER of the district a new-order loop may be building in).
  InterferenceTable weakened;
  auto copy_rows = [&](lock::ActorId actor) {
    for (size_t q = 1; q <= tpcc.catalog.assertion_count(); ++q) {
      lock::AssertionId assertion = static_cast<lock::AssertionId>(q);
      weakened.Set(actor, assertion,
                   tpcc.interference.GetRaw(actor, assertion));
    }
  };
  for (const spec::StepSpec& step : tpcc.specs.steps()) copy_rows(step.actor);
  for (const spec::PrefixSpec& prefix : tpcc.specs.prefixes()) {
    copy_rows(prefix.actor);
  }
  weakened.Set(tpcc.step_d2, tpcc.assert_no_loop, Interference::kNone);
  Status check = spec::CrossCheckInterference(weakened, derived, tpcc.specs,
                                              tpcc.catalog);
  ASSERT_FALSE(check.ok());
  EXPECT_NE(check.message().find("tpcc.d2"), std::string::npos)
      << check.message();
  EXPECT_NE(check.message().find("tpcc.no.loop"), std::string::npos)
      << check.message();
}

}  // namespace
}  // namespace accdb::acc
