#include <gtest/gtest.h>

#include "acc/catalog.h"
#include "acc/conflict_resolver.h"
#include "acc/interference.h"
#include "lock/types.h"

namespace accdb::acc {
namespace {

using lock::HolderView;
using lock::LockMode;
using lock::RequestContext;
using lock::RequestView;

// --- Catalog ---

TEST(CatalogTest, RegistersDistinctIds) {
  Catalog catalog;
  lock::ActorId s1 = catalog.RegisterStepType("s1");
  lock::ActorId p1 = catalog.RegisterPrefix("p1");
  lock::AssertionId a1 = catalog.RegisterAssertion("a1", 2);
  EXPECT_NE(s1, lock::kNoActor);
  EXPECT_NE(s1, p1);
  EXPECT_EQ(catalog.ActorName(s1), "s1");
  EXPECT_EQ(catalog.ActorName(p1), "p1");
  EXPECT_EQ(catalog.AssertionName(a1), "a1");
  EXPECT_EQ(catalog.AssertionKeyArity(a1), 2);
  EXPECT_TRUE(catalog.IsStepType(s1));
  EXPECT_FALSE(catalog.IsStepType(p1));
}

// --- InterferenceTable ---

class InterferenceTableTest : public ::testing::Test {
 protected:
  InterferenceTableTest() {
    step_ = catalog_.RegisterStepType("writer");
    other_step_ = catalog_.RegisterStepType("other");
    assertion_ = catalog_.RegisterAssertion("inv", 1);
  }

  Catalog catalog_;
  InterferenceTable table_;
  lock::ActorId step_, other_step_;
  lock::AssertionId assertion_;
};

TEST_F(InterferenceTableTest, DefaultIsConservative) {
  EXPECT_EQ(table_.Get(step_, assertion_), Interference::kAlways);
  EXPECT_TRUE(table_.Interferes(step_, {1}, assertion_, {2}));
}

TEST_F(InterferenceTableTest, NoneNeverInterferes) {
  table_.Set(step_, assertion_, Interference::kNone);
  EXPECT_FALSE(table_.Interferes(step_, {1}, assertion_, {1}));
  // Other steps stay conservative.
  EXPECT_TRUE(table_.Interferes(other_step_, {1}, assertion_, {1}));
}

TEST_F(InterferenceTableTest, SameKeyRefinement) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  EXPECT_TRUE(table_.Interferes(step_, {7}, assertion_, {7}));
  EXPECT_FALSE(table_.Interferes(step_, {7}, assertion_, {8}));
}

TEST_F(InterferenceTableTest, PrefixComparisonOverCommonLength) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  // Writer keys {w, d}; assertion keys {w, d, o}: same district conflicts.
  EXPECT_TRUE(table_.Interferes(step_, {1, 2}, assertion_, {1, 2, 99}));
  EXPECT_FALSE(table_.Interferes(step_, {1, 3}, assertion_, {1, 2, 99}));
}

TEST_F(InterferenceTableTest, EmptyKeysCannotRefine) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  EXPECT_TRUE(table_.Interferes(step_, {}, assertion_, {1}));
  EXPECT_TRUE(table_.Interferes(step_, {1}, assertion_, {}));
}

TEST_F(InterferenceTableTest, RefinementDisableDowngradesToAlways) {
  table_.Set(step_, assertion_, Interference::kIfSameKey);
  table_.set_key_refinement(false);
  EXPECT_EQ(table_.Get(step_, assertion_), Interference::kAlways);
  EXPECT_TRUE(table_.Interferes(step_, {7}, assertion_, {8}));
  table_.set_key_refinement(true);
  EXPECT_FALSE(table_.Interferes(step_, {7}, assertion_, {8}));
}

// --- AccConflictResolver ---

class AccResolverTest : public ::testing::Test {
 protected:
  AccResolverTest() : resolver_(&table_) {
    step_ = catalog_.RegisterStepType("writer");
    prefix_ = catalog_.RegisterPrefix("partial");
    assertion_ = catalog_.RegisterAssertion("inv", 1);
    table_.Set(step_, assertion_, Interference::kIfSameKey);
    table_.Set(prefix_, assertion_, Interference::kIfSameKey);
  }

  RequestContext AssertCtx(int64_t key, lock::ActorId prefix) {
    RequestContext ctx;
    ctx.actor = prefix;
    ctx.assertion = assertion_;
    ctx.keys = {key};
    return ctx;
  }

  RequestContext WriterCtx(int64_t key) {
    RequestContext ctx;
    ctx.actor = step_;
    ctx.keys = {key};
    return ctx;
  }

  Catalog catalog_;
  InterferenceTable table_;
  AccConflictResolver resolver_;
  lock::ActorId step_, prefix_;
  lock::AssertionId assertion_;
};

TEST_F(AccResolverTest, WriteVsAssertSameKeyConflicts) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(7);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &req_ctx, false}));
}

TEST_F(AccResolverTest, WriteVsAssertDifferentKeyPasses) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(8);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &req_ctx, false}));
}

TEST_F(AccResolverTest, UnknownWriterStepConflicts) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext legacy;  // actor = kNoActor: not in the table.
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &legacy, false}));
}

TEST_F(AccResolverTest, ReadNeverConflictsWithAssert) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = WriterCtx(7);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kS, &req_ctx, false}));
}

TEST_F(AccResolverTest, CompensationWithCompMarkerBypassesAssert) {
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext comp_ctx = WriterCtx(7);
  comp_ctx.for_compensation = true;
  // Without the kComp marker on the item, interference applies.
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &comp_ctx, false}));
  // With the marker (the compensating txn's forward steps wrote the item),
  // the compensating step never waits for assertional locks.
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kX, &comp_ctx, true}));
}

TEST_F(AccResolverTest, AssertRequestChecksHolderPrefix) {
  // Holder: assertional lock whose owner's prefix interferes (same key).
  RequestContext holder_ctx = AssertCtx(7, prefix_);
  RequestContext req_ctx = AssertCtx(7, lock::kNoActor);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_ctx, false}));
  // Different key: the initiation check passes.
  RequestContext req_other = AssertCtx(8, lock::kNoActor);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kAssert, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_other, false}));
}

TEST_F(AccResolverTest, AssertRequestVsMidStepWriter) {
  RequestContext holder_ctx = WriterCtx(7);  // Mid-step X holder.
  RequestContext req_ctx = AssertCtx(7, lock::kNoActor);
  EXPECT_TRUE(resolver_.Conflicts(
      HolderView{1, LockMode::kX, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_ctx, false}));
  RequestContext req_other = AssertCtx(9, lock::kNoActor);
  EXPECT_FALSE(resolver_.Conflicts(
      HolderView{1, LockMode::kX, &holder_ctx},
      RequestView{2, LockMode::kAssert, &req_other, false}));
}

TEST_F(AccResolverTest, ConventionalFallsThroughToMatrix) {
  RequestContext a, b;
  EXPECT_TRUE(resolver_.Conflicts(HolderView{1, LockMode::kX, &a},
                                  RequestView{2, LockMode::kS, &b, false}));
  EXPECT_FALSE(resolver_.Conflicts(HolderView{1, LockMode::kS, &a},
                                   RequestView{2, LockMode::kS, &b, false}));
}

}  // namespace
}  // namespace accdb::acc
