// Multi-warehouse TPC-C: remote payments (clause 2.5.1.2) and remote
// supplying warehouses (clause 2.4.1.5.3), and the workload at W=2.

#include <gtest/gtest.h>

#include <memory>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/driver.h"
#include "tpcc/loader.h"
#include "tpcc/transactions.h"

namespace accdb::tpcc {
namespace {

using acc::ExecMode;
using storage::Key;
using storage::Row;

class MultiWarehouseTest : public ::testing::Test {
 protected:
  MultiWarehouseTest() : db_(&database_), resolver_(&db_.interference) {
    scale_ = ScaleConfig::Test();
    scale_.warehouses = 2;
    LoadDatabase(db_, scale_, /*seed=*/5);
    acc::EngineConfig config;
    config.charge_acc_overheads = false;
    engine_ = std::make_unique<acc::Engine>(&database_, &resolver_, config);
  }

  storage::Database database_;
  TpccDb db_;
  ScaleConfig scale_;
  acc::AccConflictResolver resolver_;
  std::unique_ptr<acc::Engine> engine_;
  acc::ImmediateEnv env_;
};

TEST_F(MultiWarehouseTest, LoaderPopulatesBothWarehouses) {
  EXPECT_EQ(db_.warehouse->size(), 2u);
  EXPECT_EQ(db_.district->size(), 20u);
  EXPECT_EQ(db_.stock->size(), static_cast<size_t>(2 * scale_.item_count));
  ConsistencyReport report = CheckConsistency(db_, /*strict=*/true);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations[0]);
}

TEST_F(MultiWarehouseTest, RemoteSupplyLineUpdatesRemoteStock) {
  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 1;
  input.c_id = 1;
  input.lines = {{7, 5, /*supply_w_id=*/2}};
  Row remote_before = *db_.stock->Get(*db_.stock->LookupPk(Key(2, 7)));
  Row local_before = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  NewOrderTxn txn(&db_, input);
  ASSERT_TRUE(
      engine_->Execute(txn, env_, ExecMode::kAccDecomposed).status.ok());
  Row remote_after = *db_.stock->Get(*db_.stock->LookupPk(Key(2, 7)));
  Row local_after = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  // The remote warehouse's stock moved; s_remote_cnt counts the sale.
  EXPECT_EQ(remote_after[db_.s_ytd].AsInt64(),
            remote_before[db_.s_ytd].AsInt64() + 5);
  EXPECT_EQ(remote_after[db_.s_remote_cnt].AsInt64(),
            remote_before[db_.s_remote_cnt].AsInt64() + 1);
  EXPECT_EQ(local_after[db_.s_ytd].AsInt64(),
            local_before[db_.s_ytd].AsInt64());
  // The order is flagged non-local and the line records the supplier.
  Row order =
      *db_.orders->Get(*db_.orders->LookupPk(Key(1, 1, txn.order_id())));
  EXPECT_EQ(order[db_.o_all_local].AsInt64(), 0);
  auto lines = db_.order_line->ScanPkPrefix(Key(1, 1, txn.order_id()));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ((*db_.order_line->Get(lines[0]))[db_.ol_supply_w_id].AsInt64(),
            2);
  EXPECT_TRUE(CheckConsistency(db_, /*strict=*/true).ok);
}

TEST_F(MultiWarehouseTest, RemoteSupplyCompensationRestoresRemoteStock) {
  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 2;
  input.c_id = 1;
  input.lines = {{7, 5, 2}, {8, 1, 1}};
  input.rollback = true;  // Abort at the final item.
  Row remote_before = *db_.stock->Get(*db_.stock->LookupPk(Key(2, 7)));
  NewOrderTxn txn(&db_, input);
  acc::ExecResult result =
      engine_->Execute(txn, env_, ExecMode::kAccDecomposed);
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
  EXPECT_TRUE(result.compensated);
  Row remote_after = *db_.stock->Get(*db_.stock->LookupPk(Key(2, 7)));
  EXPECT_EQ(remote_after[db_.s_ytd].AsInt64(),
            remote_before[db_.s_ytd].AsInt64());
  EXPECT_EQ(remote_after[db_.s_remote_cnt].AsInt64(),
            remote_before[db_.s_remote_cnt].AsInt64());
  EXPECT_TRUE(CheckConsistency(db_, /*strict=*/false).ok);
}

TEST_F(MultiWarehouseTest, RemotePaymentCreditsRemoteCustomer) {
  PaymentInput input;
  input.w_id = 1;
  input.d_id = 3;
  input.c_w_id = 2;  // Remote customer.
  input.c_d_id = 5;
  input.by_last_name = false;
  input.c_id = 4;
  input.amount = Money::FromDollars(77);
  Row cust_before = *db_.customer->Get(*db_.customer->LookupPk(Key(2, 5, 4)));
  Money w1_before = (*db_.warehouse->Get(*db_.warehouse->LookupPk(Key(1))))
      [db_.w_ytd].AsMoney();
  PaymentTxn txn(&db_, input);
  ASSERT_TRUE(
      engine_->Execute(txn, env_, ExecMode::kAccDecomposed).status.ok());
  // The paying warehouse's ytd moved; the remote customer's balance moved.
  Money w1_after = (*db_.warehouse->Get(*db_.warehouse->LookupPk(Key(1))))
      [db_.w_ytd].AsMoney();
  EXPECT_EQ(w1_after, w1_before + input.amount);
  Row cust_after = *db_.customer->Get(*db_.customer->LookupPk(Key(2, 5, 4)));
  EXPECT_EQ(cust_after[db_.c_balance].AsMoney(),
            cust_before[db_.c_balance].AsMoney() - input.amount);
  EXPECT_TRUE(CheckConsistency(db_, /*strict=*/true).ok);
}

TEST(MultiWarehouseWorkloadTest, TwoWarehouseWorkloadConsistent) {
  WorkloadConfig config;
  config.mode = acc::ExecMode::kAccDecomposed;
  config.terminals = 12;
  config.servers = 2;
  config.sim_seconds = 20;
  config.seed = 88;
  config.mean_think_seconds = 0.1;
  config.keying_seconds = 0.02;
  config.inputs.scale = ScaleConfig::Test();
  config.inputs.scale.warehouses = 2;
  config.engine.charge_acc_overheads = false;
  WorkloadResult result = RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.completed, 100u);
}

TEST(MultiWarehouseWorkloadTest, FourWarehouseWorkloadConsistent) {
  WorkloadConfig config;
  config.mode = acc::ExecMode::kAccDecomposed;
  config.terminals = 12;
  config.servers = 2;
  config.sim_seconds = 15;
  config.seed = 88;
  config.mean_think_seconds = 0.1;
  config.keying_seconds = 0.02;
  config.inputs.scale = ScaleConfig::Test();
  config.inputs.scale.warehouses = 4;
  config.engine.charge_acc_overheads = false;
  WorkloadResult result = RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.completed, 100u);
}

// --- Fair-pairing audit ---
//
// Both systems of a bench pair consume the same generator stream, so the
// comparison is only fair if that stream is a pure function of (config,
// seed). The tests below pin it two ways: same-seed generators must agree
// elementwise, and the canonical hash of the generated mix must equal a
// recorded constant — any change to draw order or mix shows up as a hash
// change and must be called out as a bench-compatibility break.

uint64_t HashMix(uint64_t h, int64_t v) {
  // FNV-1a over the 8 bytes of v.
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((u >> (8 * i)) & 0xff)) * 1099511628211ULL;
  }
  return h;
}

// Canonical serialization of `n` draws: every iteration draws one type,
// one new-order and one payment, hashing all integer fields in order.
uint64_t MixHash(const InputGenConfig& config, uint64_t seed, int n) {
  InputGenerator gen(config, seed);
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis.
  for (int i = 0; i < n; ++i) {
    h = HashMix(h, static_cast<int64_t>(gen.NextType()));
    NewOrderInput no = gen.NextNewOrder();
    h = HashMix(h, no.w_id);
    h = HashMix(h, no.d_id);
    h = HashMix(h, no.c_id);
    h = HashMix(h, no.rollback ? 1 : 0);
    for (const auto& line : no.lines) {
      h = HashMix(h, line.item_id);
      h = HashMix(h, line.quantity);
      h = HashMix(h, line.supply_w_id);
    }
    PaymentInput p = gen.NextPayment();
    h = HashMix(h, p.w_id);
    h = HashMix(h, p.d_id);
    h = HashMix(h, p.c_w_id);
    h = HashMix(h, p.c_d_id);
    h = HashMix(h, p.by_last_name ? 1 : 0);
    h = HashMix(h, p.c_id);
    h = HashMix(h, p.amount.cents());
  }
  return h;
}

InputGenConfig AuditConfig(int64_t warehouses) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  config.scale.warehouses = warehouses;
  return config;
}

TEST(FairPairingTest, SameSeedStreamsAgreeElementwise) {
  for (int64_t warehouses : {int64_t{1}, int64_t{4}}) {
    InputGenerator a(AuditConfig(warehouses), 4242);
    InputGenerator b(AuditConfig(warehouses), 4242);
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(a.NextType(), b.NextType());
      NewOrderInput na = a.NextNewOrder(), nb = b.NextNewOrder();
      EXPECT_EQ(na.w_id, nb.w_id);
      EXPECT_EQ(na.d_id, nb.d_id);
      EXPECT_EQ(na.c_id, nb.c_id);
      ASSERT_EQ(na.lines.size(), nb.lines.size());
      for (size_t j = 0; j < na.lines.size(); ++j) {
        EXPECT_EQ(na.lines[j].item_id, nb.lines[j].item_id);
        EXPECT_EQ(na.lines[j].supply_w_id, nb.lines[j].supply_w_id);
      }
      PaymentInput pa = a.NextPayment(), pb = b.NextPayment();
      EXPECT_EQ(pa.c_w_id, pb.c_w_id);
      EXPECT_EQ(pa.c_id, pb.c_id);
    }
  }
}

TEST(FairPairingTest, GeneratedMixPinnedAtW1AndW4) {
  // Recorded constants: 500 canonical draws at seed 4242. A failure here
  // means the generated transaction mix changed — every bench number
  // before and after the change is incomparable until the goldens and
  // EXPERIMENTS.md are re-recorded.
  EXPECT_EQ(MixHash(AuditConfig(1), 4242, 500), 0xeed71db99438a090ULL);
  EXPECT_EQ(MixHash(AuditConfig(4), 4242, 500), 0xc57adda358f9a282ULL);
}

TEST(FairPairingTest, StreamIsIdenticalAcrossAllFourSystems) {
  // The N-system harness (bench/harness.h RunSystems) derives each system's
  // workload from one shared config by overwriting only `mode`. The
  // comparison stays fair exactly as long as the generated stream is a pure
  // function of (inputs, seed) — the mode must never leak into it. Mirror
  // that derivation here and require every system's stream hash to equal
  // the same pinned constant as the pair audit above.
  const acc::ExecMode modes[] = {
      acc::ExecMode::kAccDecomposed, acc::ExecMode::kSerializable,
      acc::ExecMode::kOptimistic, acc::ExecMode::kMultiVersion};
  WorkloadConfig base;
  base.inputs = AuditConfig(4);
  base.seed = 4242;
  for (acc::ExecMode mode : modes) {
    WorkloadConfig system = base;
    system.mode = mode;
    EXPECT_EQ(MixHash(system.inputs, system.seed, 500),
              0xc57adda358f9a282ULL)
        << "stream diverged under mode "
        << acc::ExecModeName(mode);
  }
}

TEST(FairPairingTest, HomeWarehouseBindingFixesOriginKeepsRemoteTraffic) {
  // A bound terminal originates every transaction at its home warehouse,
  // but remote payments and remote supply lines still cross warehouses —
  // binding changes affinity, not the cross-warehouse traffic the spec
  // mandates.
  InputGenConfig config = AuditConfig(4);
  config.home_warehouse = 3;
  InputGenerator gen(config, 777);
  int remote_payments = 0, remote_lines = 0;
  for (int i = 0; i < 2000; ++i) {
    NewOrderInput no = gen.NextNewOrder();
    EXPECT_EQ(no.w_id, 3);
    for (const auto& line : no.lines) {
      if (line.supply_w_id != no.w_id) ++remote_lines;
    }
    PaymentInput p = gen.NextPayment();
    EXPECT_EQ(p.w_id, 3);
    if (p.c_w_id != p.w_id) ++remote_payments;
    EXPECT_EQ(gen.NextOrderStatus().w_id, 3);
    EXPECT_EQ(gen.NextDelivery().w_id, 3);
    EXPECT_EQ(gen.NextStockLevel().w_id, 3);
  }
  EXPECT_NEAR(remote_payments / 2000.0, 0.15, 0.03);
  EXPECT_GT(remote_lines, 0);
}

TEST(MultiWarehouseWorkloadTest, InputGeneratorProducesRemoteTraffic) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  config.scale.warehouses = 3;
  InputGenerator gen(config, 99);
  int remote_payments = 0;
  int remote_lines = 0, total_lines = 0;
  for (int i = 0; i < 5000; ++i) {
    PaymentInput p = gen.NextPayment();
    if (p.c_w_id != p.w_id) ++remote_payments;
    NewOrderInput no = gen.NextNewOrder();
    for (const auto& line : no.lines) {
      ++total_lines;
      if (line.supply_w_id != no.w_id) ++remote_lines;
    }
  }
  EXPECT_NEAR(remote_payments / 5000.0, 0.15, 0.02);
  EXPECT_NEAR(static_cast<double>(remote_lines) / total_lines, 0.01, 0.005);
}

}  // namespace
}  // namespace accdb::tpcc
