#include <gtest/gtest.h>

#include <map>

#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/input.h"
#include "tpcc/loader.h"
#include "tpcc/tpcc_db.h"

namespace accdb::tpcc {
namespace {

TEST(LoaderTest, CustomerLastNames) {
  EXPECT_EQ(CustomerLastName(0), "BARBARBAR");
  EXPECT_EQ(CustomerLastName(371), "PRICALLYOUGHT");
  EXPECT_EQ(CustomerLastName(999), "EINGEINGEING");
}

class LoadedDbTest : public ::testing::Test {
 protected:
  LoadedDbTest() : db_(&database_) {
    scale_ = ScaleConfig::Test();
    LoadDatabase(db_, scale_, /*seed=*/42);
  }

  storage::Database database_;
  TpccDb db_;
  ScaleConfig scale_;
};

TEST_F(LoadedDbTest, Cardinalities) {
  EXPECT_EQ(db_.warehouse->size(), 1u);
  EXPECT_EQ(db_.district->size(), 10u);
  EXPECT_EQ(db_.item->size(), static_cast<size_t>(scale_.item_count));
  EXPECT_EQ(db_.stock->size(), static_cast<size_t>(scale_.item_count));
  EXPECT_EQ(db_.customer->size(),
            static_cast<size_t>(10 * scale_.customers_per_district));
  EXPECT_EQ(db_.history->size(), db_.customer->size());
  EXPECT_EQ(db_.orders->size(),
            static_cast<size_t>(10 * scale_.initial_orders_per_district));
  EXPECT_EQ(db_.new_order->size(), 0u);  // Loaded fully delivered.
}

TEST_F(LoadedDbTest, FreshDatabaseIsStrictlyConsistent) {
  ConsistencyReport report = CheckConsistency(db_, /*strict=*/true);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations[0]);
}

TEST_F(LoadedDbTest, DistrictNextOrderIds) {
  for (storage::RowId id : db_.district->ScanAll()) {
    const storage::Row& row = *db_.district->Get(id);
    EXPECT_EQ(row[db_.d_next_o_id].AsInt64(),
              scale_.initial_orders_per_district + 1);
  }
}

TEST_F(LoadedDbTest, CustomersFindableByLastName) {
  // Customer 1 has name number 0 = BARBARBAR.
  auto matches = db_.customer->ScanIndexPrefix(
      db_.customer_by_last, storage::Key(1, 1, std::string("BARBARBAR")));
  EXPECT_FALSE(matches.empty());
}

TEST_F(LoadedDbTest, DeterministicLoad) {
  storage::Database other_db;
  TpccDb other(&other_db);
  LoadDatabase(other, scale_, /*seed=*/42);
  EXPECT_EQ(other.customer->size(), db_.customer->size());
  // Spot-check a customer row matches exactly.
  auto a = db_.customer->LookupPk(storage::Key(1, 3, 7));
  auto b = other.customer->LookupPk(storage::Key(1, 3, 7));
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*db_.customer->Get(*a), *other.customer->Get(*b));
}

// --- Input generator ---

TEST(InputGenTest, MixApproximatesWeights) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  InputGenerator gen(config, 7);
  std::map<TxnType, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[gen.NextType()];
  EXPECT_NEAR(counts[TxnType::kNewOrder] / static_cast<double>(n), 0.45,
              0.02);
  EXPECT_NEAR(counts[TxnType::kPayment] / static_cast<double>(n), 0.43, 0.02);
  EXPECT_NEAR(counts[TxnType::kDelivery] / static_cast<double>(n), 0.04,
              0.01);
}

TEST(InputGenTest, NewOrderInputsInRange) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  InputGenerator gen(config, 9);
  int rollbacks = 0;
  for (int i = 0; i < 2000; ++i) {
    NewOrderInput input = gen.NextNewOrder();
    EXPECT_EQ(input.w_id, 1);
    EXPECT_GE(input.d_id, 1);
    EXPECT_LE(input.d_id, 10);
    EXPECT_GE(input.c_id, 1);
    EXPECT_LE(input.c_id, config.scale.customers_per_district);
    EXPECT_GE(input.lines.size(), 5u);
    EXPECT_LE(input.lines.size(), 15u);
    for (const auto& line : input.lines) {
      EXPECT_GE(line.item_id, 1);
      EXPECT_LE(line.item_id, config.scale.item_count);
      EXPECT_GE(line.quantity, 1);
      EXPECT_LE(line.quantity, 10);
    }
    rollbacks += input.rollback;
  }
  EXPECT_GT(rollbacks, 2);
  EXPECT_LT(rollbacks, 80);  // ~1%.
}

TEST(InputGenTest, SkewedDistrictsConcentrate) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  config.skew_districts = true;
  config.hot_districts = 1;
  config.hot_fraction = 0.6;
  InputGenerator gen(config, 11);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.NextNewOrder().d_id == 1) ++hot;
  }
  EXPECT_NEAR(hot / static_cast<double>(n), 0.6, 0.02);
}

TEST(InputGenTest, PaymentMixesNameAndIdLookup) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  InputGenerator gen(config, 13);
  int by_name = 0;
  for (int i = 0; i < 5000; ++i) by_name += gen.NextPayment().by_last_name;
  EXPECT_NEAR(by_name / 5000.0, 0.6, 0.03);
}

TEST(InputGenTest, OrderSizeKnob) {
  InputGenConfig config;
  config.scale = ScaleConfig::Test();
  config.min_order_lines = 20;
  config.max_order_lines = 30;
  InputGenerator gen(config, 15);
  for (int i = 0; i < 200; ++i) {
    size_t n = gen.NextNewOrder().lines.size();
    EXPECT_GE(n, 20u);
    EXPECT_LE(n, 30u);
  }
}

}  // namespace
}  // namespace accdb::tpcc
