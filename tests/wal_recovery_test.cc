// End-to-end WAL crash recovery at the engine level: transactions crash at
// step boundaries across TWO warehouse shards while normal traffic runs,
// then every volatile structure is discarded — database, engine, in-memory
// recovery log — and the WAL file is all that survives. Recovery reloads the
// deterministic initial state, replays the WAL's redo in LSN order, rebuilds
// the in-flight view, and runs the §3.4 compensators. The database must end
// consistent, with no failed or uncompensatable transactions.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/recovery.h"
#include "acc/sim_env.h"
#include "acc/wal.h"
#include "common/rng.h"
#include "sim/simulation.h"
#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/loader.h"
#include "tpcc/transactions.h"

namespace accdb::tpcc {
namespace {

using acc::ExecMode;

std::string WalPath(uint64_t seed) {
  return ::testing::TempDir() + "accdb_wal_recovery_" + std::to_string(seed) +
         ".wal";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Runs the inner new-order with a truncated line list so it stops cleanly at
// a step boundary, then hangs at the crash point (as in the failure
// injection test, but with the WAL underneath).
class CrashingNewOrder : public acc::TransactionProgram {
 public:
  CrashingNewOrder(TpccDb* db, NewOrderInput input, int lines_before_crash,
                   sim::Simulation* sim, sim::Signal* crash)
      : db_(db),
        input_(std::move(input)),
        lines_before_crash_(lines_before_crash),
        sim_(sim),
        crash_(crash) {}

  std::string_view name() const override { return "tpcc.new_order"; }
  lock::ActorId PrefixActor(int steps) const override {
    return steps == 0 ? db_->prefix_empty : db_->prefix_no_partial;
  }
  bool has_compensation() const override { return true; }
  lock::ActorId CompensationStepType() const override {
    return db_->step_cs_no;
  }
  Status Compensate(acc::TxnContext& ctx, int steps) override {
    (void)steps;
    return inner_ != nullptr
               ? NewOrderTxn::CompensateOrder(ctx, *db_, input_.w_id,
                                              input_.d_id, inner_->order_id())
               : Status::Ok();
  }
  std::string SerializeWorkArea() const override {
    return inner_ != nullptr ? inner_->SerializeWorkArea() : "0 0 0";
  }

  Status Run(acc::TxnContext& ctx) override {
    NewOrderInput truncated = input_;
    truncated.lines.resize(
        std::min<size_t>(truncated.lines.size(), lines_before_crash_));
    inner_ = std::make_unique<NewOrderTxn>(db_, truncated);
    Status status = inner_->Run(ctx);
    if (!status.ok()) return status;
    sim_->WaitSignal(*crash_);  // Crash point; never fires.
    return Status::Internal("unreachable");
  }

 private:
  TpccDb* db_;
  NewOrderInput input_;
  int lines_before_crash_;
  sim::Simulation* sim_;
  sim::Signal* crash_;
  std::unique_ptr<NewOrderTxn> inner_;
};

class WalRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, WalRecoveryTest, ::testing::Values(3, 91));

TEST_P(WalRecoveryTest, CrossShardCrashRecoversFromSurvivingWalOnly) {
  const uint64_t seed = GetParam();
  const std::string wal_path = WalPath(seed);
  ::unlink(wal_path.c_str());

  ScaleConfig scale = ScaleConfig::Test();
  scale.warehouses = 2;

  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  config.wal.path = wal_path;
  config.wal.group_commit_us = 0;

  // Phase 1: crash one transaction in each warehouse shard mid-flight,
  // with normal traffic around them.
  int crashers = 0;
  std::string surviving_wal;
  {
    storage::Database database;
    TpccDb db(&database);
    LoadDatabase(db, scale, seed);
    acc::AccConflictResolver resolver(&db.interference);
    acc::Engine engine(&database, &resolver, config);
    ASSERT_TRUE(engine.wal_status().ok()) << engine.wal_status().ToString();

    Rng rng(seed * 31 + 7);
    InputGenConfig gen_config;
    gen_config.scale = scale;
    InputGenerator gen(gen_config, rng.Next());

    sim::Simulation sim;
    sim::Signal crash_point(sim);
    std::vector<std::unique_ptr<acc::SimExecutionEnv>> envs;
    std::vector<std::unique_ptr<acc::TransactionProgram>> programs;

    // One crasher per warehouse: the in-flight set spans both shards.
    bool have_warehouse[3] = {false, false, false};
    for (int tries = 0; tries < 200 && crashers < 2; ++tries) {
      NewOrderInput input = gen.NextNewOrder();
      input.rollback = false;
      if (input.lines.size() < 4) continue;
      const auto w = static_cast<size_t>(input.w_id);
      if (w < 1 || w > 2 || have_warehouse[w]) continue;
      have_warehouse[w] = true;
      envs.push_back(std::make_unique<acc::SimExecutionEnv>(sim, nullptr));
      programs.push_back(std::make_unique<CrashingNewOrder>(
          &db, input, static_cast<int>(rng.UniformInt(1, 3)), &sim,
          &crash_point));
      acc::SimExecutionEnv* env = envs.back().get();
      acc::TransactionProgram* prog = programs.back().get();
      double start = 0.01 * crashers;
      sim.Spawn("crasher", [&, env, prog, start] {
        sim.Delay(start);
        (void)engine.Execute(*prog, *env, ExecMode::kAccDecomposed);
      });
      ++crashers;
    }
    ASSERT_EQ(crashers, 2);

    for (int t = 0; t < 4; ++t) {
      envs.push_back(std::make_unique<acc::SimExecutionEnv>(sim, nullptr));
      acc::SimExecutionEnv* env = envs.back().get();
      uint64_t term_seed = rng.Next();
      sim.Spawn("terminal", [&, env, term_seed] {
        Rng term_rng(term_seed);
        InputGenConfig cfg;
        cfg.scale = scale;
        InputGenerator term_gen(cfg, term_rng.Next());
        for (int i = 0; i < 15; ++i) {
          sim.Delay(term_rng.Exponential(0.02));
          switch (term_gen.NextType()) {
            case TxnType::kNewOrder: {
              NewOrderTxn txn(&db, term_gen.NextNewOrder());
              (void)engine.Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kPayment: {
              PaymentTxn txn(&db, term_gen.NextPayment());
              (void)engine.Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kOrderStatus: {
              OrderStatusTxn txn(&db, term_gen.NextOrderStatus());
              (void)engine.Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kDelivery: {
              DeliveryTxn txn(&db, term_gen.NextDelivery());
              (void)engine.Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kStockLevel: {
              StockLevelTxn txn(&db, term_gen.NextStockLevel());
              (void)engine.Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
          }
        }
      });
    }
    sim.Run();  // Drains; the crashers are stuck mid-flight.
    EXPECT_GE(sim.live_processes(), crashers);

    // The crash: snapshot the file as it exists on disk RIGHT NOW — only
    // what WaitDurable forced. The engine destructor below would kindly
    // flush its remaining buffer; a kill -9 does not, so discard that.
    surviving_wal = ReadFileBytes(wal_path);
    ASSERT_FALSE(surviving_wal.empty());
  }
  WriteFileBytes(wal_path, surviving_wal);

  // Phase 2: a fresh process. Reload the deterministic initial state,
  // replay the surviving WAL's redo, rebuild the in-flight view, compensate.
  storage::Database database;
  TpccDb db(&database);
  LoadDatabase(db, scale, seed);
  acc::AccConflictResolver resolver(&db.interference);
  auto engine = std::make_unique<acc::Engine>(&database, &resolver, config);
  ASSERT_TRUE(engine->wal_status().ok()) << engine->wal_status().ToString();
  acc::Wal* wal = engine->wal();
  ASSERT_NE(wal, nullptr);
  ASSERT_FALSE(wal->recovered().empty());

  ASSERT_TRUE(ReplayWal(database, wal->recovered()).ok());
  acc::RecoveryLog log = acc::RebuildRecoveryLog(wal->recovered());
  acc::CompensatorRegistry registry;
  RegisterTpccCompensators(&db, &registry);
  acc::ImmediateEnv recovery_env;
  acc::RecoveryReport report =
      acc::RunRecovery(*engine, log, registry, recovery_env);
  EXPECT_GE(report.in_flight, crashers);
  EXPECT_EQ(report.compensated, report.in_flight);
  EXPECT_EQ(report.failed, 0) << report.first_error.ToString();
  EXPECT_EQ(report.missing_compensator, 0);
  EXPECT_TRUE(report.clean());

  ConsistencyReport consistency = CheckConsistency(db, /*strict=*/false);
  EXPECT_TRUE(consistency.ok) << (consistency.violations.empty()
                                      ? ""
                                      : consistency.violations[0]);
  engine.reset();  // Releases the log file before the re-scan below.

  // Idempotence after a second crash: the compensations above were logged
  // under the ORIGINAL transaction ids, so a re-scan of the log finds
  // nothing left in flight.
  Status status;
  acc::Wal::Options reopen_options;
  reopen_options.path = wal_path;
  std::unique_ptr<acc::Wal> reopened = acc::Wal::Open(reopen_options, &status);
  ASSERT_NE(reopened, nullptr) << status.ToString();
  acc::RecoveryLog after = acc::RebuildRecoveryLog(reopened->recovered());
  EXPECT_TRUE(after.FindInFlight().empty());

  ::unlink(wal_path.c_str());
}

}  // namespace
}  // namespace accdb::tpcc
