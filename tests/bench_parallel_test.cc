// Determinism of the parallel experiment fan-out (bench/harness.h): a
// sweep grid pushed through the thread pool must produce results
// bit-identical to the serial path — same seeds, same per-run virtual
// clocks, results collected in sweep order regardless of completion order.

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "bench/harness.h"
#include "tpcc/driver.h"

namespace accdb::bench {
namespace {

tpcc::WorkloadConfig TinyConfig(uint64_t seed) {
  tpcc::WorkloadConfig config = BaseConfig(seed);
  config.sim_seconds = 2;
  return config;
}

void ExpectSameRun(const tpcc::WorkloadResult& a,
                   const tpcc::WorkloadResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.txn_restarts, b.txn_restarts);
  EXPECT_EQ(a.lock_stats.requests, b.lock_stats.requests);
  EXPECT_EQ(a.lock_stats.waits, b.lock_stats.waits);
  EXPECT_EQ(a.lock_stats.deadlocks, b.lock_stats.deadlocks);
  // Bit-identical, not approximately equal: the parallel runner must not
  // perturb the simulation in any way.
  EXPECT_EQ(a.response_all.mean(), b.response_all.mean());
  EXPECT_EQ(a.total_lock_wait, b.total_lock_wait);
  // The full serialized result — histograms, per-mode wait attribution,
  // queue-depth stats — must also match byte for byte.
  EXPECT_EQ(WorkloadResultJson(a).Dump(), WorkloadResultJson(b).Dump());
}

TEST(BenchParallelTest, GridMatchesSerialBitIdentical) {
  std::vector<tpcc::WorkloadConfig> configs = {TinyConfig(11), TinyConfig(19)};
  std::vector<int> terminals = {2, 4};

  std::vector<std::vector<PairResult>> serial =
      RunPairGrid(1, configs, terminals);
  std::vector<std::vector<PairResult>> parallel =
      RunPairGrid(4, configs, terminals);

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), terminals.size());
    ASSERT_EQ(parallel[c].size(), terminals.size());
    for (size_t t = 0; t < terminals.size(); ++t) {
      const PairResult& s = serial[c][t];
      const PairResult& p = parallel[c][t];
      EXPECT_EQ(s.terminals, terminals[t]);
      EXPECT_EQ(p.terminals, terminals[t]);
      ExpectSameRun(s.acc, p.acc);
      ExpectSameRun(s.non_acc, p.non_acc);
    }
  }
}

TEST(BenchParallelTest, RunConfigsPreservesArgumentOrder) {
  // Configs with very different run lengths: the long one is submitted
  // first and (under >1 jobs) finishes last; results must still come back
  // in argument order.
  tpcc::WorkloadConfig slow = TinyConfig(3);
  slow.sim_seconds = 3;
  slow.terminals = 4;
  tpcc::WorkloadConfig fast = TinyConfig(3);
  fast.sim_seconds = 1;
  fast.terminals = 2;

  std::vector<tpcc::WorkloadResult> serial = RunConfigs(1, {slow, fast});
  std::vector<tpcc::WorkloadResult> parallel = RunConfigs(2, {slow, fast});
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  ExpectSameRun(serial[0], parallel[0]);
  ExpectSameRun(serial[1], parallel[1]);
  // The two runs are genuinely distinguishable (4 terminals for 3 simulated
  // seconds vs 2 for 1), so a slot swap could not slip past ExpectSameRun.
  EXPECT_GT(serial[0].lock_stats.requests, serial[1].lock_stats.requests);
}

TEST(PairResultTest, DegenerateRatiosAreZeroAndFlagged) {
  PairResult pair;  // No samples on either side.
  EXPECT_TRUE(pair.response_degenerate());
  EXPECT_TRUE(pair.throughput_degenerate());
  EXPECT_TRUE(pair.degenerate());
  EXPECT_EQ(pair.ResponseRatio(), 0);
  EXPECT_EQ(pair.ThroughputRatio(), 0);
  EXPECT_NE(std::string_view(DegenerateMark(pair)), "");
}

TEST(PairResultTest, HealthyPairIsNotFlagged) {
  PairResult pair;
  pair.acc.response_all.Add(0.5);
  pair.acc.completed = 10;
  pair.non_acc.response_all.Add(1.0);
  pair.non_acc.completed = 5;
  EXPECT_FALSE(pair.degenerate());
  EXPECT_DOUBLE_EQ(pair.ResponseRatio(), 2.0);
  EXPECT_DOUBLE_EQ(pair.ThroughputRatio(), 0.5);
  EXPECT_EQ(std::string_view(DegenerateMark(pair)), "");
}

TEST(BenchOptionsTest, ParsesJobsAndJsonFlags) {
  const char* argv[] = {"prog", "--jobs=3", "--json=out.json"};
  BenchOptions options =
      ParseBenchOptions("x", 3, const_cast<char**>(argv));
  EXPECT_EQ(options.name, "x");
  EXPECT_EQ(options.jobs, 3);
  EXPECT_EQ(options.json_path, "out.json");
}

TEST(BenchOptionsTest, NoJsonDisablesReport) {
  const char* argv[] = {"prog", "--jobs", "2", "--no-json"};
  BenchOptions options =
      ParseBenchOptions("x", 4, const_cast<char**>(argv));
  EXPECT_EQ(options.jobs, 2);
  EXPECT_TRUE(options.json_path.empty());
}

TEST(BenchOptionsTest, DefaultJsonPathUsesBenchName) {
  const char* argv[] = {"prog", "--jobs=1"};
  BenchOptions options =
      ParseBenchOptions("fig9_demo", 2, const_cast<char**>(argv));
  EXPECT_EQ(options.json_path, "BENCH_fig9_demo.json");
}

}  // namespace
}  // namespace accdb::bench
