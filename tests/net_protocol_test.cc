// Wire-protocol codec tests: round-trips for every message kind, incremental
// (byte-by-byte) decoding, and rejection of malformed, truncated, oversized,
// and trailing-garbage frames. The decoder is connection-fatal on error, so
// every rejection case also checks the poisoned state sticks.

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "net/protocol.h"
#include "tpcc/input.h"

namespace accdb::net {
namespace {

std::string PutU32(uint32_t v) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  return out;
}

// A frame with an arbitrary payload (length prefix computed).
std::string RawFrame(const std::string& payload) {
  return PutU32(static_cast<uint32_t>(payload.size())) + payload;
}

TEST(ProtocolTest, ExecRequestRoundTrip) {
  ExecRequest req;
  req.request_id = 0x1122334455667788ULL;
  req.txn_type = 1;
  req.deadline_ms = 250;
  req.attempt = 3;

  FrameDecoder decoder;
  decoder.Append(EncodeFrame(Message(req)));
  Message out;
  ASSERT_EQ(decoder.Next(&out), DecodeResult::kMessage);
  auto* got = std::get_if<ExecRequest>(&out);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->request_id, req.request_id);
  EXPECT_EQ(got->txn_type, req.txn_type);
  EXPECT_EQ(got->deadline_ms, req.deadline_ms);
  EXPECT_EQ(got->attempt, req.attempt);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kNeedMore);
}

TEST(ProtocolTest, ExecResponseRoundTrip) {
  ExecResponse resp;
  resp.request_id = 42;
  resp.status = WireStatus::kDeadlineExceeded;
  resp.compensated = 1;
  resp.step_deadlock_retries = 7;
  resp.txn_restarts = 2;
  resp.server_seconds = 0.034251;
  resp.queue_seconds = 0.0125;
  resp.message = "lock wait deadline";

  FrameDecoder decoder;
  decoder.Append(EncodeFrame(Message(resp)));
  Message out;
  ASSERT_EQ(decoder.Next(&out), DecodeResult::kMessage);
  auto* got = std::get_if<ExecResponse>(&out);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->request_id, resp.request_id);
  EXPECT_EQ(got->status, resp.status);
  EXPECT_EQ(got->compensated, resp.compensated);
  EXPECT_EQ(got->step_deadlock_retries, resp.step_deadlock_retries);
  EXPECT_EQ(got->txn_restarts, resp.txn_restarts);
  EXPECT_DOUBLE_EQ(got->server_seconds, resp.server_seconds);
  EXPECT_DOUBLE_EQ(got->queue_seconds, resp.queue_seconds);
  EXPECT_EQ(got->message, resp.message);
}

TEST(ProtocolTest, StatsRoundTrip) {
  StatsRequest req;
  req.request_id = 9;
  StatsResponse resp;
  resp.request_id = 9;
  resp.json = "{\"requests_admitted\":17}";

  FrameDecoder decoder;
  decoder.Append(EncodeFrame(Message(req)));
  decoder.Append(EncodeFrame(Message(resp)));
  Message out;
  ASSERT_EQ(decoder.Next(&out), DecodeResult::kMessage);
  ASSERT_NE(std::get_if<StatsRequest>(&out), nullptr);
  EXPECT_EQ(std::get<StatsRequest>(out).request_id, 9u);
  ASSERT_EQ(decoder.Next(&out), DecodeResult::kMessage);
  auto* got = std::get_if<StatsResponse>(&out);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->json, resp.json);
}

TEST(ProtocolTest, ByteByByteFeedNeedsMoreUntilComplete) {
  ExecRequest req;
  req.request_id = 5;
  req.txn_type = 0;
  std::string frame = EncodeFrame(Message(req));

  FrameDecoder decoder;
  Message out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Append(std::string_view(&frame[i], 1));
    ASSERT_EQ(decoder.Next(&out), DecodeResult::kNeedMore) << "byte " << i;
  }
  decoder.Append(std::string_view(&frame[frame.size() - 1], 1));
  ASSERT_EQ(decoder.Next(&out), DecodeResult::kMessage);
  EXPECT_EQ(std::get<ExecRequest>(out).request_id, 5u);
}

TEST(ProtocolTest, EmptyFrameIsFatal) {
  FrameDecoder decoder;
  decoder.Append(PutU32(0));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
  EXPECT_FALSE(decoder.error().ok());
  // Poisoned: more (valid) data cannot resurrect the stream.
  decoder.Append(EncodeFrame(Message(ExecRequest{})));
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, OversizedFrameIsFatal) {
  FrameDecoder decoder;
  decoder.Append(PutU32(static_cast<uint32_t>(kMaxPayloadBytes + 1)));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, CustomPayloadCeilingApplies) {
  // A frame legal under the default ceiling but over a smaller one.
  StatsResponse resp;
  resp.request_id = 1;
  resp.json = std::string(128, 'x');
  FrameDecoder decoder(/*max_payload=*/64);
  decoder.Append(EncodeFrame(Message(resp)));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, UnknownKindIsFatal) {
  FrameDecoder decoder;
  decoder.Append(RawFrame(std::string(1, '\x7F')));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, TruncatedBodyIsFatal) {
  // Declared length covers the kind byte plus two bytes — far short of an
  // exec request body. The frame is complete, the body is not.
  std::string payload;
  payload.push_back(static_cast<char>(MsgKind::kExecRequest));
  payload += "ab";
  FrameDecoder decoder;
  decoder.Append(RawFrame(payload));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, TrailingBytesAreFatal) {
  std::string frame = EncodeFrame(Message(StatsRequest{11}));
  // Extend the declared payload length by two and append two junk bytes:
  // the body parses but does not consume the frame exactly.
  uint32_t len = static_cast<uint32_t>(frame.size() - 4) + 2;
  std::string payload = frame.substr(4) + "zz";
  FrameDecoder decoder;
  decoder.Append(PutU32(len) + payload);
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, UnknownTxnTypeIsFatal) {
  ExecRequest req;
  req.txn_type = static_cast<uint8_t>(tpcc::kNumTxnTypes);
  FrameDecoder decoder;
  decoder.Append(EncodeFrame(Message(req)));
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, UnknownWireStatusIsFatal) {
  std::string frame = EncodeFrame(Message(ExecResponse{}));
  frame[4 + 1 + 8] = static_cast<char>(kMaxWireStatus + 1);  // Status byte.
  FrameDecoder decoder;
  decoder.Append(frame);
  Message out;
  EXPECT_EQ(decoder.Next(&out), DecodeResult::kError);
}

TEST(ProtocolTest, StatusMappingRoundTrips) {
  EXPECT_EQ(ToWireStatus(Status::Ok()), WireStatus::kOk);
  EXPECT_EQ(ToWireStatus(Status::Aborted("x")), WireStatus::kAborted);
  EXPECT_EQ(ToWireStatus(Status::Deadlock("x")), WireStatus::kAborted);
  EXPECT_EQ(ToWireStatus(Status::DeadlineExceeded("x")),
            WireStatus::kDeadlineExceeded);
  EXPECT_EQ(ToWireStatus(Status::Overloaded("x")), WireStatus::kOverloaded);
  EXPECT_EQ(ToWireStatus(Status::InvalidArgument("x")),
            WireStatus::kInvalidRequest);
  EXPECT_EQ(ToWireStatus(Status::Internal("x")), WireStatus::kInternal);

  EXPECT_TRUE(FromWireStatus(WireStatus::kOk, "").ok());
  EXPECT_EQ(FromWireStatus(WireStatus::kAborted, "m").code(),
            StatusCode::kAborted);
  EXPECT_EQ(FromWireStatus(WireStatus::kDeadlineExceeded, "m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(FromWireStatus(WireStatus::kOverloaded, "m").code(),
            StatusCode::kOverloaded);
  // Shutdown surfaces as overload client-side: both mean "back off".
  EXPECT_EQ(FromWireStatus(WireStatus::kShuttingDown, "m").code(),
            StatusCode::kOverloaded);
  EXPECT_EQ(FromWireStatus(WireStatus::kInvalidRequest, "m").code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, WireStatusNamesAreStable) {
  EXPECT_EQ(WireStatusName(WireStatus::kOk), "OK");
  EXPECT_EQ(WireStatusName(WireStatus::kOverloaded), "OVERLOADED");
  EXPECT_EQ(WireStatusName(WireStatus::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(WireStatusName(WireStatus::kShuttingDown), "SHUTTING_DOWN");
}

}  // namespace
}  // namespace accdb::net
