// Multi-warehouse real-thread runtime: worker-to-warehouse affinity,
// cross-warehouse transactions spanning two storage shards under real
// concurrency, and the extended (C13) consistency check after the dust
// settles. Part of the tsan_smoke list: boosted remote fractions make
// two-shard transactions (remote payment / remote supply line) common
// enough that the race detector sees shard A's latch taken while shard B's
// rows are already written in the same transaction.

#include <gtest/gtest.h>

#include "runtime/rt_runner.h"
#include "tpcc/config.h"

namespace accdb::runtime {
namespace {

RtConfig MultiWhConfig(bool decomposed, int64_t warehouses) {
  RtConfig config;
  config.workload.mode = decomposed ? acc::ExecMode::kAccDecomposed
                                   : acc::ExecMode::kSerializable;
  config.workload.terminals = 8;
  config.workload.seed = 20250807;
  config.workload.inputs.scale = tpcc::ScaleConfig::Test();
  config.workload.inputs.scale.warehouses = warehouses;
  // Boosted cross-warehouse traffic: every other payment remote, a third
  // of supply lines remote — far above spec, to stress two-shard
  // transactions rather than model the benchmark.
  config.workload.inputs.remote_payment_fraction = 0.5;
  config.workload.inputs.remote_supply_fraction = 0.33;
  config.seconds = 0.6;
  config.warmup_seconds = 0;
  config.cost_scale = 0;  // Pure protocol stress, no modeled sleeps.
  config.think_scale = 0;
  return config;
}

TEST(RtMultiWarehouseTest, AccModeTwoShardsConsistent) {
  tpcc::WorkloadResult result = RunRtWorkload(MultiWhConfig(true, 2));
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

TEST(RtMultiWarehouseTest, SerializableModeTwoShardsConsistent) {
  tpcc::WorkloadResult result = RunRtWorkload(MultiWhConfig(false, 2));
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_EQ(result.compensated, 0u);
}

TEST(RtMultiWarehouseTest, FourWarehousesWithAffinityConsistent) {
  RtConfig config = MultiWhConfig(true, 4);
  ASSERT_TRUE(config.warehouse_affinity);
  tpcc::WorkloadResult result = RunRtWorkload(config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

TEST(RtMultiWarehouseTest, AffinityOffStillConsistent) {
  // Without affinity every worker draws its warehouse per transaction, so
  // all workers hit all shards — the worst case for the per-shard latches.
  RtConfig config = MultiWhConfig(true, 4);
  config.warehouse_affinity = false;
  tpcc::WorkloadResult result = RunRtWorkload(config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

TEST(RtMultiWarehouseTest, AuditedRunReportsZeroViolations) {
  // Assertion auditing on: every interstep assertion instance that carries
  // fully refined keys is re-evaluated against the live database at its
  // contract points (claim, re-claim after a gap, grant). Under a sound
  // interference table nothing may ever observe a falsified instance.
  RtConfig config = MultiWhConfig(true, 2);
  config.workload.engine.audit_assertions = true;
  tpcc::WorkloadResult result = RunRtWorkload(config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.assertions_audited, 0u);
  EXPECT_EQ(result.assertion_violations, 0u)
      << result.first_assertion_violation;
}

TEST(RtMultiWarehouseTest, SharedCounterIdBlockStillWorks) {
  // txn_id_block == 1 forces every transaction start through the shared
  // atomic counter — the pre-batching behavior must stay correct.
  RtConfig config = MultiWhConfig(true, 2);
  config.txn_id_block = 1;
  tpcc::WorkloadResult result = RunRtWorkload(config);
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

}  // namespace
}  // namespace accdb::runtime
