// Tests for the alternative concurrency-control backends of src/cc:
// ExecMode::kOptimistic (OCC with backward validation) and
// ExecMode::kMultiVersion (MV2PL writers + snapshot readers), driven
// through the same Engine::Execute seam the paper's two systems use.
//
// The multi-threaded cases double as the tsan_smoke workload for the new
// backends: OCC executions never block (per-thread ImmediateEnv is safe),
// and MVCC mixes locking writers with lock-free snapshot readers.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "acc/catalog.h"
#include "acc/engine.h"
#include "acc/function_program.h"
#include "acc/txn_context.h"
#include "acc/wal.h"
#include "cc/occ.h"
#include "cc/version_store.h"
#include "lock/conflict.h"
#include "runtime/thread_env.h"
#include "storage/database.h"

namespace accdb::acc {
namespace {

using storage::Key;
using storage::Row;
using storage::Value;

// Two counter variables plus one keyed table (key, val), an engine over a
// plain conflict matrix (the backends under test never consult assertional
// semantics), and a registered step type to satisfy the step protocol.
class CcBackendTest : public ::testing::Test {
 public:
  CcBackendTest() {
    counter_a_ = db_.CreateVariable("a", 0);
    counter_b_ = db_.CreateVariable("b", 0);
    storage::Schema schema;
    schema.columns = {{"k", storage::ColumnType::kInt64},
                      {"v", storage::ColumnType::kInt64}};
    schema.key_columns = {0};
    kv_ = db_.CreateTable("kv", schema);
    step_ = catalog_.RegisterStepType("step");
    EngineConfig config;
    config.charge_acc_overheads = false;
    MakeEngine(config);
  }

  void MakeEngine(const EngineConfig& config) {
    engine_ = std::make_unique<Engine>(&db_, &resolver_, config);
  }

  int64_t ReadCounter(storage::Table* t) { return db_.ReadVariable(*t); }

  // One-step program over `body`, optionally read-only (MVCC snapshot).
  ExecResult Run(ExecMode mode, ExecutionEnv& env, bool read_only,
                 const std::function<Status(TxnContext&)>& body) {
    FunctionProgram prog("cc_test", [&](TxnContext& ctx) {
      return ctx.RunStep(step_, {1}, AssertionInstance{}, body);
    });
    prog.set_read_only(read_only);
    return engine_->Execute(prog, env, mode);
  }

  storage::Database db_;
  storage::Table* counter_a_;
  storage::Table* counter_b_;
  storage::Table* kv_;
  Catalog catalog_;
  lock::MatrixConflictResolver resolver_;
  std::unique_ptr<Engine> engine_;
  ImmediateEnv env_;
  lock::ActorId step_;
};

// --- OCC ---

TEST_F(CcBackendTest, OccCommitAppliesBufferedWrites) {
  ExecResult result =
      Run(ExecMode::kOptimistic, env_, /*read_only=*/false,
          [&](TxnContext& c) -> Status {
            ACCDB_ASSIGN_OR_RETURN(int64_t v,
                                   c.ReadVariable(*counter_a_, true));
            ACCDB_RETURN_IF_ERROR(c.WriteVariable(*counter_a_, v + 1));
            // Nothing is visible in the table until commit.
            EXPECT_EQ(ReadCounter(counter_a_), 0);
            return Status::Ok();
          });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.txn_restarts, 0);
  EXPECT_EQ(ReadCounter(counter_a_), 1);
}

TEST_F(CcBackendTest, OccReadsItsOwnBufferedInsertsAndUpdates) {
  ExecResult result = Run(
      ExecMode::kOptimistic, env_, /*read_only=*/false,
      [&](TxnContext& c) -> Status {
        ACCDB_ASSIGN_OR_RETURN(storage::RowId r1,
                               c.Insert(*kv_, {Value(int64_t{1}),
                                               Value(int64_t{10})}));
        ACCDB_ASSIGN_OR_RETURN(storage::RowId r2,
                               c.Insert(*kv_, {Value(int64_t{2}),
                                               Value(int64_t{20})}));
        // Buffered ids are virtual: they never touch the table.
        EXPECT_TRUE(cc::IsOccVirtual(r1));
        EXPECT_TRUE(cc::IsOccVirtual(r2));
        EXPECT_FALSE(kv_->LookupPk(Key(1)).has_value());
        // Point read and scans overlay the buffer.
        ACCDB_ASSIGN_OR_RETURN(Row row, c.ReadByKey(*kv_, Key(2)));
        EXPECT_EQ(row[1].AsInt64(), 20);
        ACCDB_ASSIGN_OR_RETURN(auto all, c.ScanPkPrefix(*kv_, Key()));
        EXPECT_EQ(all.size(), 2u);
        // Updating a buffered insert patches its image in place.
        ACCDB_RETURN_IF_ERROR(
            c.Update(*kv_, r1, {{1, Value(int64_t{11})}}));
        ACCDB_ASSIGN_OR_RETURN(Row row1, c.ReadByKey(*kv_, Key(1)));
        EXPECT_EQ(row1[1].AsInt64(), 11);
        return Status::Ok();
      });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // Commit materialized both inserts under real ids.
  std::optional<storage::RowId> id1 = kv_->LookupPk(Key(1));
  ASSERT_TRUE(id1.has_value());
  EXPECT_FALSE(cc::IsOccVirtual(*id1));
  EXPECT_EQ((*kv_->GetCopy(*id1))[1].AsInt64(), 11);
  EXPECT_TRUE(kv_->LookupPk(Key(2)).has_value());
}

TEST_F(CcBackendTest, OccValidationFailureRestartsTransaction) {
  int attempts = 0;
  ExecResult result = Run(
      ExecMode::kOptimistic, env_, /*read_only=*/false,
      [&](TxnContext& c) -> Status {
        ++attempts;
        ACCDB_ASSIGN_OR_RETURN(int64_t v, c.ReadVariable(*counter_a_, true));
        if (attempts == 1) {
          // A concurrent optimistic writer commits between our read and our
          // commit: its version bump must fail our validation.
          ImmediateEnv other_env;
          ExecResult other = Run(ExecMode::kOptimistic, other_env,
                                 /*read_only=*/false,
                                 [&](TxnContext& oc) -> Status {
                                   ACCDB_ASSIGN_OR_RETURN(
                                       int64_t ov,
                                       oc.ReadVariable(*counter_a_, true));
                                   return oc.WriteVariable(*counter_a_,
                                                           ov + 10);
                                 });
          EXPECT_TRUE(other.status.ok());
        }
        return c.WriteVariable(*counter_a_, v + 1);
      });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(result.txn_restarts, 1);
  // The restart re-read the committed 10; no lost update.
  EXPECT_EQ(ReadCounter(counter_a_), 11);
}

TEST_F(CcBackendTest, OccRestartLimitExhaustionSurfacesAsAborted) {
  EngineConfig config;
  config.charge_acc_overheads = false;
  config.txn_restart_limit = 2;
  MakeEngine(config);
  const lock::ItemId item =
      lock::ItemId::Row(counter_a_->id(), storage::kVariableRowId);
  int attempts = 0;
  ExecResult result = Run(
      ExecMode::kOptimistic, env_, /*read_only=*/false,
      [&](TxnContext& c) -> Status {
        ++attempts;
        ACCDB_ASSIGN_OR_RETURN(int64_t v, c.ReadVariable(*counter_a_, true));
        {
          // Invalidate our own read set on every attempt.
          std::lock_guard<std::mutex> g(
              engine_->occ_versions().commit_mutex());
          engine_->occ_versions().Bump(item);
        }
        return c.WriteVariable(*counter_a_, v + 1);
      });
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
  EXPECT_EQ(result.txn_restarts, 2);
  EXPECT_EQ(attempts, 3);  // Initial attempt + two restarts.
  EXPECT_EQ(ReadCounter(counter_a_), 0);  // Buffer never applied.
}

TEST_F(CcBackendTest, OccInsertKeyValidationCatchesConcurrentInsert) {
  int attempts = 0;
  ExecResult result = Run(
      ExecMode::kOptimistic, env_, /*read_only=*/false,
      [&](TxnContext& c) -> Status {
        ++attempts;
        if (attempts == 1) {
          // Buffer key 1, then lose the race to a committing writer.
          ACCDB_RETURN_IF_ERROR(
              c.Insert(*kv_, {Value(int64_t{1}), Value(int64_t{100})})
                  .status());
          ImmediateEnv other_env;
          ExecResult other =
              Run(ExecMode::kOptimistic, other_env, /*read_only=*/false,
                  [&](TxnContext& oc) -> Status {
                    return oc
                        .Insert(*kv_, {Value(int64_t{1}), Value(int64_t{7})})
                        .status();
                  });
          EXPECT_TRUE(other.status.ok());
          return Status::Ok();  // Commit-time key re-check must fail.
        }
        // The restart sees the committed duplicate immediately.
        Status dup =
            c.Insert(*kv_, {Value(int64_t{1}), Value(int64_t{100})}).status();
        EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
        return c.Insert(*kv_, {Value(int64_t{2}), Value(int64_t{200})})
            .status();
      });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.txn_restarts, 1);
  ASSERT_TRUE(kv_->LookupPk(Key(1)).has_value());
  EXPECT_EQ((*kv_->GetCopy(*kv_->LookupPk(Key(1))))[1].AsInt64(), 7);
  EXPECT_TRUE(kv_->LookupPk(Key(2)).has_value());
}

// OCC executions never block, so every thread can run on its own
// ImmediateEnv: pure validate/apply contention on one hot counter.
TEST_F(CcBackendTest, OccParallelIncrementsLoseNoUpdates) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ImmediateEnv env;
      for (int i = 0; i < kPerThread; ++i) {
        ExecResult result =
            Run(ExecMode::kOptimistic, env, /*read_only=*/false,
                [&](TxnContext& c) -> Status {
                  ACCDB_ASSIGN_OR_RETURN(int64_t v,
                                         c.ReadVariable(*counter_a_, true));
                  return c.WriteVariable(*counter_a_, v + 1);
                });
        if (!result.status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(ReadCounter(counter_a_), kThreads * kPerThread);
}

// A doomed execution (another transaction committed our buffered insert's
// key after Insert()'s advisory check) keeps running until commit-time
// validation aborts it; its scans must never show the key twice — the
// merges resolve the collision to the buffered row.
TEST_F(CcBackendTest, DoomedExecutionScansNeverShowDuplicateKeys) {
  int attempts = 0;
  ExecResult result = Run(
      ExecMode::kOptimistic, env_, /*read_only=*/false,
      [&](TxnContext& c) -> Status {
        ++attempts;
        if (attempts > 1) return Status::Ok();  // Clean restart; commit.
        ACCDB_RETURN_IF_ERROR(
            c.Insert(*kv_, {Value(int64_t{1}), Value(int64_t{100})})
                .status());
        ImmediateEnv other_env;
        ExecResult other =
            Run(ExecMode::kOptimistic, other_env, /*read_only=*/false,
                [&](TxnContext& oc) -> Status {
                  return oc
                      .Insert(*kv_, {Value(int64_t{1}), Value(int64_t{7})})
                      .status();
                });
        EXPECT_TRUE(other.status.ok());
        // Both a buffered and a committed row now carry key 1.
        ACCDB_ASSIGN_OR_RETURN(auto all, c.ScanPkPrefix(*kv_, Key()));
        EXPECT_EQ(all.size(), 1u);
        if (!all.empty()) EXPECT_EQ(all[0].second[1].AsInt64(), 100);
        ACCDB_ASSIGN_OR_RETURN(auto min, c.MinPkPrefix(*kv_, Key()));
        EXPECT_TRUE(min.has_value());
        if (min.has_value()) EXPECT_EQ(min->second[1].AsInt64(), 100);
        return Status::Ok();  // Insert-key validation must fail.
      });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.txn_restarts, 1);
  // The competitor's commit survived; ours never applied.
  ASSERT_TRUE(kv_->LookupPk(Key(1)).has_value());
  EXPECT_EQ((*kv_->GetCopy(*kv_->LookupPk(Key(1))))[1].AsInt64(), 7);
}

// WAL-attached OCC: the commit record is appended inside the commit
// critical section and must carry the transaction's complete redo — a
// replay of the log alone reproduces the committed state.
TEST_F(CcBackendTest, OccWalCommitRecordCarriesFullRedo) {
  const std::string wal_path =
      ::testing::TempDir() + "accdb_cc_backend_occ.wal";
  ::unlink(wal_path.c_str());
  EngineConfig config;
  config.charge_acc_overheads = false;
  config.wal.path = wal_path;
  config.wal.group_commit_us = 0;
  MakeEngine(config);
  ASSERT_TRUE(engine_->wal_status().ok())
      << engine_->wal_status().ToString();

  ExecResult first =
      Run(ExecMode::kOptimistic, env_, /*read_only=*/false,
          [&](TxnContext& c) -> Status {
            ACCDB_RETURN_IF_ERROR(
                c.Insert(*kv_, {Value(int64_t{1}), Value(int64_t{10})})
                    .status());
            ACCDB_RETURN_IF_ERROR(
                c.Insert(*kv_, {Value(int64_t{2}), Value(int64_t{20})})
                    .status());
            return c.WriteVariable(*counter_a_, 5);
          });
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  ExecResult second =
      Run(ExecMode::kOptimistic, env_, /*read_only=*/false,
          [&](TxnContext& c) -> Status {
            ACCDB_ASSIGN_OR_RETURN(Row row, c.ReadByKey(*kv_, Key(1)));
            (void)row;
            std::optional<storage::RowId> id = kv_->LookupPk(Key(1));
            ACCDB_RETURN_IF_ERROR(
                c.Update(*kv_, *id, {{1, Value(int64_t{11})}}));
            return c.Delete(*kv_, *kv_->LookupPk(Key(2)));
          });
  ASSERT_TRUE(second.status.ok()) << second.status.ToString();
  engine_.reset();  // Releases the log file for the re-open below.

  // A fresh database built in the same creation order (same table ids),
  // populated purely from the recovered records' redo.
  storage::Database db2;
  storage::Table* a2 = db2.CreateVariable("a", 0);
  db2.CreateVariable("b", 0);
  storage::Schema schema;
  schema.columns = {{"k", storage::ColumnType::kInt64},
                    {"v", storage::ColumnType::kInt64}};
  schema.key_columns = {0};
  storage::Table* kv2 = db2.CreateTable("kv", schema);

  Status status;
  Wal::Options reopen;
  reopen.path = wal_path;
  std::unique_ptr<Wal> wal = Wal::Open(reopen, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  ASSERT_FALSE(wal->recovered().empty());
  ASSERT_TRUE(ReplayWal(db2, wal->recovered()).ok());

  EXPECT_EQ(db2.ReadVariable(*a2), 5);
  std::optional<storage::RowId> id1 = kv2->LookupPk(Key(1));
  ASSERT_TRUE(id1.has_value());
  EXPECT_EQ((*kv2->GetCopy(*id1))[1].AsInt64(), 11);
  EXPECT_FALSE(kv2->LookupPk(Key(2)).has_value());
  ::unlink(wal_path.c_str());
}

// --- MVCC ---

TEST_F(CcBackendTest, MvccSnapshotReaderIgnoresLaterCommits) {
  ExecResult result = Run(
      ExecMode::kMultiVersion, env_, /*read_only=*/true,
      [&](TxnContext& c) -> Status {
        ACCDB_ASSIGN_OR_RETURN(int64_t a0, c.ReadVariable(*counter_a_));
        EXPECT_EQ(a0, 0);
        // A writer commits both counters mid-transaction...
        ImmediateEnv writer_env;
        ExecResult writer =
            Run(ExecMode::kMultiVersion, writer_env, /*read_only=*/false,
                [&](TxnContext& wc) -> Status {
                  ACCDB_RETURN_IF_ERROR(
                      wc.ReadVariable(*counter_a_, true).status());
                  ACCDB_RETURN_IF_ERROR(wc.WriteVariable(*counter_a_, 5));
                  ACCDB_RETURN_IF_ERROR(
                      wc.ReadVariable(*counter_b_, true).status());
                  return wc.WriteVariable(*counter_b_, 7);
                });
        EXPECT_TRUE(writer.status.ok());
        EXPECT_EQ(ReadCounter(counter_a_), 5);  // Live table moved on.
        // ...but this snapshot stays pinned before it.
        ACCDB_ASSIGN_OR_RETURN(int64_t a1, c.ReadVariable(*counter_a_));
        ACCDB_ASSIGN_OR_RETURN(int64_t b1, c.ReadVariable(*counter_b_));
        EXPECT_EQ(a1, 0);
        EXPECT_EQ(b1, 0);
        return Status::Ok();
      });
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(ReadCounter(counter_a_), 5);
  EXPECT_EQ(ReadCounter(counter_b_), 7);
  EXPECT_EQ(engine_->version_store().active_snapshots(), 0u);
}

TEST_F(CcBackendTest, MvccSnapshotTransactionsCannotWrite) {
  ExecResult result =
      Run(ExecMode::kMultiVersion, env_, /*read_only=*/true,
          [&](TxnContext& c) -> Status {
            return c.WriteVariable(*counter_a_, 1);
          });
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(ReadCounter(counter_a_), 0);
}

TEST_F(CcBackendTest, MvccGcNeverReclaimsVersionsVisibleToActiveSnapshot) {
  cc::VersionStore& store = engine_->version_store();
  const uint64_t snapshot = store.AcquireSnapshot();
  // Two committed writes push two chain entries past the snapshot.
  for (int64_t v = 1; v <= 2; ++v) {
    ImmediateEnv writer_env;
    ExecResult writer =
        Run(ExecMode::kMultiVersion, writer_env, /*read_only=*/false,
            [&](TxnContext& wc) -> Status {
              ACCDB_RETURN_IF_ERROR(
                  wc.ReadVariable(*counter_a_, true).status());
              return wc.WriteVariable(*counter_a_, v);
            });
    ASSERT_TRUE(writer.status.ok());
  }
  ASSERT_GE(store.entry_count(), 1u);
  EXPECT_EQ(store.GcWatermark(), snapshot);
  // Forced GC reclaims nothing the pinned snapshot can still reach.
  EXPECT_EQ(store.Gc(), 0u);
  cc::SnapshotReader reader(&store, snapshot);
  Result<Row> as_of =
      reader.ReadById(*counter_a_, storage::kVariableRowId);
  ASSERT_TRUE(as_of.ok());
  EXPECT_EQ((*as_of)[0].AsInt64(), 0);  // Pre-writer value reconstructed.
  // Once released, the whole chain is reclaimable.
  store.ReleaseSnapshot(snapshot);
  EXPECT_GE(store.Gc(), 1u);
  EXPECT_EQ(store.entry_count(), 0u);
}

// Writers preserve a == b transactionally; snapshot readers must never
// observe a half-applied pair, no matter how the threads interleave.
TEST_F(CcBackendTest, MvccSnapshotReadersSeeConsistentPairs) {
  constexpr int kWriters = 2;
  constexpr int kWritesPerThread = 40;
  constexpr int kReaders = 2;
  constexpr int kReadsPerThread = 60;
  std::atomic<int> committed{0};
  std::atomic<int> torn_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      runtime::ThreadExecutionEnv env(/*time_scale=*/0);
      for (int i = 0; i < kWritesPerThread; ++i) {
        ExecResult result = Run(
            ExecMode::kMultiVersion, env, /*read_only=*/false,
            [&](TxnContext& c) -> Status {
              ACCDB_ASSIGN_OR_RETURN(int64_t a,
                                     c.ReadVariable(*counter_a_, true));
              ACCDB_ASSIGN_OR_RETURN(int64_t b,
                                     c.ReadVariable(*counter_b_, true));
              EXPECT_EQ(a, b);  // X locks held: the pair is stable.
              ACCDB_RETURN_IF_ERROR(c.WriteVariable(*counter_a_, a + 1));
              return c.WriteVariable(*counter_b_, b + 1);
            });
        if (result.status.ok()) committed.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      runtime::ThreadExecutionEnv env(/*time_scale=*/0);
      for (int i = 0; i < kReadsPerThread; ++i) {
        ExecResult result =
            Run(ExecMode::kMultiVersion, env, /*read_only=*/true,
                [&](TxnContext& c) -> Status {
                  ACCDB_ASSIGN_OR_RETURN(int64_t a,
                                         c.ReadVariable(*counter_a_));
                  ACCDB_ASSIGN_OR_RETURN(int64_t b,
                                         c.ReadVariable(*counter_b_));
                  if (a != b) torn_reads.fetch_add(1);
                  return Status::Ok();
                });
        EXPECT_TRUE(result.status.ok());  // Snapshot readers never abort.
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(committed.load(), kWriters * kWritesPerThread);
  EXPECT_EQ(ReadCounter(counter_a_), committed.load());
  EXPECT_EQ(ReadCounter(counter_b_), committed.load());
  EXPECT_EQ(engine_->version_store().active_snapshots(), 0u);
  engine_->version_store().Gc();
  EXPECT_EQ(engine_->version_store().entry_count(), 0u);
}

}  // namespace
}  // namespace accdb::acc
