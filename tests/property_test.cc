// Property-based tests: randomized concurrent schedules swept over seeds
// with TEST_P. The invariants:
//   * semantic correctness — after any mix of decomposed transactions
//     (including the forced 1% aborts and their compensations), the
//     database consistency constraint holds;
//   * serializable runs satisfy the strict versions of the constraints;
//   * the lock table drains (no leaked locks, no stuck transactions);
//   * same seed => identical execution (determinism).

#include <gtest/gtest.h>

#include <memory>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/sim_env.h"
#include "common/rng.h"
#include "lock/conflict.h"
#include "orderproc/order_system.h"
#include "orderproc/transactions.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "storage/database.h"
#include "tpcc/driver.h"

namespace accdb {
namespace {

// --- Order-processing random schedules ---

struct OrderProcRunStats {
  uint64_t committed = 0;
  uint64_t compensated = 0;
  uint64_t deadlock_retries = 0;
  int64_t final_counter = 0;
  bool consistent = false;
  std::string violation;
};

OrderProcRunStats RunRandomOrderProc(uint64_t seed, bool decomposed,
                                     int terminals, double horizon) {
  storage::Database database;
  orderproc::OrderSystem sys(&database);
  sys.LoadItems(/*item_count=*/15, /*stock_level=*/40, /*price_cents=*/100);

  lock::MatrixConflictResolver matrix;
  acc::AccConflictResolver acc_resolver(&sys.interference);
  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  acc::Engine engine(&database,
                     decomposed ? static_cast<const lock::ConflictResolver*>(
                                      &acc_resolver)
                                : &matrix,
                     config);
  acc::ExecMode mode = decomposed ? acc::ExecMode::kAccDecomposed
                                  : acc::ExecMode::kSerializable;

  OrderProcRunStats stats;
  {
    sim::Simulation sim;
    sim::Resource servers(sim, 2);
    Rng seeder(seed);
    struct Terminal {
      Rng rng;
      acc::SimExecutionEnv env;
      Terminal(uint64_t s, sim::Simulation& sim, sim::Resource& servers)
          : rng(s), env(sim, &servers) {}
    };
    std::vector<std::unique_ptr<Terminal>> terminals_vec;
    for (int t = 0; t < terminals; ++t) {
      terminals_vec.push_back(
          std::make_unique<Terminal>(seeder.Next(), sim, servers));
      Terminal* term = terminals_vec.back().get();
      sim.Spawn("t", [&, term] {
        while (sim.Now() < horizon) {
          sim.Delay(term->rng.Exponential(0.05));
          if (term->rng.Bernoulli(0.75)) {
            // new_order, 10% of them aborting at the last item.
            std::vector<orderproc::NewOrderTxn::ItemRequest> items;
            int n = static_cast<int>(term->rng.UniformInt(2, 6));
            for (int i = 0; i < n; ++i) {
              items.push_back({term->rng.UniformInt(1, 15),
                               term->rng.UniformInt(1, 5)});
            }
            orderproc::NewOrderTxn txn(&sys, term->rng.UniformInt(1, 50),
                                       items,
                                       term->rng.Bernoulli(0.1));
            acc::ExecResult r = engine.Execute(txn, term->env, mode);
            ASSERT_NE(r.status.code(), StatusCode::kInternal)
                << r.status.ToString();
            if (r.status.ok()) ++stats.committed;
            if (r.compensated) ++stats.compensated;
            stats.deadlock_retries += r.step_deadlock_retries;
          } else {
            int64_t counter = database.ReadVariable(*sys.order_counter);
            if (counter <= 1) continue;
            orderproc::BillTxn txn(&sys, term->rng.UniformInt(1, counter - 1));
            acc::ExecResult r = engine.Execute(txn, term->env, mode);
            if (r.status.ok()) ++stats.committed;
          }
        }
      });
    }
    sim.Run();
    // Every process must have finished (no undetected deadlock wedges).
    EXPECT_EQ(sim.live_processes(), 0)
        << engine.lock_manager().DumpWaiters();
  }
  stats.final_counter = database.ReadVariable(*sys.order_counter);
  stats.consistent = sys.CheckConsistency(&stats.violation);
  return stats;
}

class OrderProcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, OrderProcPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST_P(OrderProcPropertyTest, AccSchedulesAreSemanticallyCorrect) {
  OrderProcRunStats stats =
      RunRandomOrderProc(GetParam(), /*decomposed=*/true, /*terminals=*/12,
                         /*horizon=*/5.0);
  EXPECT_TRUE(stats.consistent) << stats.violation;
  EXPECT_GT(stats.committed, 50u);
  // Forced aborts happened and were compensated.
  EXPECT_GT(stats.compensated, 0u);
}

TEST_P(OrderProcPropertyTest, SerializableSchedulesAreConsistent) {
  OrderProcRunStats stats =
      RunRandomOrderProc(GetParam(), /*decomposed=*/false, /*terminals=*/12,
                         /*horizon=*/5.0);
  EXPECT_TRUE(stats.consistent) << stats.violation;
  EXPECT_GT(stats.committed, 50u);
}

TEST_P(OrderProcPropertyTest, DeterministicExecution) {
  OrderProcRunStats a =
      RunRandomOrderProc(GetParam(), true, /*terminals=*/8, /*horizon=*/2.0);
  OrderProcRunStats b =
      RunRandomOrderProc(GetParam(), true, /*terminals=*/8, /*horizon=*/2.0);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.compensated, b.compensated);
  EXPECT_EQ(a.deadlock_retries, b.deadlock_retries);
  EXPECT_EQ(a.final_counter, b.final_counter);
}

// The two-level conservatism (key refinement off) must still be *correct*
// — only slower. Sweep seeds with refinement disabled.
class TwoLevelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TwoLevelPropertyTest,
                         ::testing::Values(7, 11, 19, 23));

TEST_P(TwoLevelPropertyTest, ConservativeModeStaysCorrect) {
  storage::Database database;
  orderproc::OrderSystem sys(&database);
  sys.LoadItems(10, 50, 100);
  sys.interference.set_key_refinement(false);
  acc::AccConflictResolver resolver(&sys.interference);
  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  acc::Engine engine(&database, &resolver, config);
  {
    sim::Simulation sim;
    std::vector<std::unique_ptr<acc::SimExecutionEnv>> envs;
    Rng seeder(GetParam());
    for (int t = 0; t < 10; ++t) {
      envs.push_back(std::make_unique<acc::SimExecutionEnv>(sim, nullptr));
      acc::SimExecutionEnv* env = envs.back().get();
      uint64_t term_seed = seeder.Next();
      sim.Spawn("t", [&, env, term_seed] {
        Rng rng(term_seed);
        for (int i = 0; i < 30; ++i) {
          sim.Delay(rng.Exponential(0.02));
          std::vector<orderproc::NewOrderTxn::ItemRequest> items;
          int n = static_cast<int>(rng.UniformInt(2, 5));
          for (int k = 0; k < n; ++k) {
            items.push_back({rng.UniformInt(1, 10), rng.UniformInt(1, 3)});
          }
          orderproc::NewOrderTxn txn(&sys, rng.UniformInt(1, 20), items,
                                     rng.Bernoulli(0.1));
          txn.set_pause_between_steps(0.005);
          acc::ExecResult r = engine.Execute(
              txn, *env, acc::ExecMode::kAccDecomposed);
          ASSERT_NE(r.status.code(), StatusCode::kInternal)
              << r.status.ToString();
        }
      });
    }
    sim.Run();
    EXPECT_EQ(sim.live_processes(), 0)
        << engine.lock_manager().DumpWaiters();
  }
  std::string violation;
  EXPECT_TRUE(sys.CheckConsistency(&violation)) << violation;
}

// --- TPC-C workload sweeps ---

class TpccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TpccPropertyTest,
                         ::testing::Values(101, 202, 303));

TEST_P(TpccPropertyTest, AccWorkloadConsistent) {
  tpcc::WorkloadConfig config;
  config.mode = acc::ExecMode::kAccDecomposed;
  config.terminals = 12;
  config.servers = 2;
  config.sim_seconds = 20;
  config.seed = GetParam();
  config.mean_think_seconds = 0.1;
  config.keying_seconds = 0.02;
  config.inputs.scale = tpcc::ScaleConfig::Test();
  config.engine.charge_acc_overheads = false;
  tpcc::WorkloadResult result = tpcc::RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.completed, 100u);
}

TEST_P(TpccPropertyTest, SerializableWorkloadStrictlyConsistent) {
  tpcc::WorkloadConfig config;
  config.mode = acc::ExecMode::kSerializable;
  config.terminals = 12;
  config.servers = 2;
  config.sim_seconds = 20;
  config.seed = GetParam();
  config.mean_think_seconds = 0.1;
  config.keying_seconds = 0.02;
  config.inputs.scale = tpcc::ScaleConfig::Test();
  tpcc::WorkloadResult result = tpcc::RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

TEST_P(TpccPropertyTest, SkewedWorkloadConsistent) {
  tpcc::WorkloadConfig config;
  config.mode = acc::ExecMode::kAccDecomposed;
  config.terminals = 16;
  config.servers = 2;
  config.sim_seconds = 15;
  config.seed = GetParam();
  config.mean_think_seconds = 0.05;
  config.keying_seconds = 0.01;
  config.inputs.scale = tpcc::ScaleConfig::Test();
  config.inputs.skew_districts = true;
  config.inputs.hot_districts = 1;
  config.inputs.hot_fraction = 0.8;
  config.engine.charge_acc_overheads = false;
  tpcc::WorkloadResult result = tpcc::RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

TEST_P(TpccPropertyTest, CoarseGranularityConsistent) {
  tpcc::WorkloadConfig config;
  config.mode = acc::ExecMode::kAccDecomposed;
  config.granularity = tpcc::NewOrderGranularity::kCoarse;
  config.terminals = 10;
  config.servers = 2;
  config.sim_seconds = 15;
  config.seed = GetParam();
  config.mean_think_seconds = 0.1;
  config.keying_seconds = 0.02;
  config.inputs.scale = tpcc::ScaleConfig::Test();
  tpcc::WorkloadResult result = tpcc::RunWorkload(config);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

}  // namespace
}  // namespace accdb
