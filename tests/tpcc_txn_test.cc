// Single-transaction behaviour of the five TPC-C programs, under both the
// ACC and the serializable executor (ImmediateEnv: no concurrency).

#include <gtest/gtest.h>

#include <memory>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/recovery.h"
#include "lock/conflict.h"
#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/loader.h"
#include "tpcc/transactions.h"

namespace accdb::tpcc {
namespace {

using acc::ExecMode;
using acc::ExecResult;
using storage::Key;
using storage::Row;
using storage::Value;

class TpccTxnTest : public ::testing::TestWithParam<bool> {
 protected:
  TpccTxnTest() : db_(&database_), acc_resolver_(&db_.interference) {
    scale_ = ScaleConfig::Test();
    LoadDatabase(db_, scale_, /*seed=*/42);
    acc::EngineConfig config;
    config.charge_acc_overheads = false;
    engine_ = std::make_unique<acc::Engine>(
        &database_,
        Decomposed() ? static_cast<const lock::ConflictResolver*>(
                           &acc_resolver_)
                     : &matrix_resolver_,
        config);
  }

  bool Decomposed() const { return GetParam(); }
  ExecMode Mode() const {
    return Decomposed() ? ExecMode::kAccDecomposed : ExecMode::kSerializable;
  }

  ExecResult Execute(acc::TransactionProgram& program) {
    return engine_->Execute(program, env_, Mode());
  }

  Row DistrictRow(int64_t w, int64_t d) {
    return *db_.district->Get(*db_.district->LookupPk(Key(w, d)));
  }
  Row WarehouseRow(int64_t w) {
    return *db_.warehouse->Get(*db_.warehouse->LookupPk(Key(w)));
  }
  Row CustomerRow(int64_t w, int64_t d, int64_t c) {
    return *db_.customer->Get(*db_.customer->LookupPk(Key(w, d, c)));
  }

  void ExpectConsistent(bool strict) {
    ConsistencyReport report = CheckConsistency(db_, strict);
    EXPECT_TRUE(report.ok) << (report.violations.empty()
                                   ? ""
                                   : report.violations[0]);
  }

  storage::Database database_;
  TpccDb db_;
  ScaleConfig scale_;
  lock::MatrixConflictResolver matrix_resolver_;
  acc::AccConflictResolver acc_resolver_;
  std::unique_ptr<acc::Engine> engine_;
  acc::ImmediateEnv env_;
};

INSTANTIATE_TEST_SUITE_P(BothExecutors, TpccTxnTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Acc" : "Serializable";
                         });

TEST_P(TpccTxnTest, NewOrderCommits) {
  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 3;
  input.c_id = 5;
  input.lines = {{1, 2}, {2, 3}, {3, 4}};
  NewOrderTxn txn(&db_, input);
  ExecResult result = Execute(txn);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  if (Decomposed()) {
    EXPECT_EQ(result.steps_completed, 5);  // NO1 + 3x NO2 + NO3.
  }
  int64_t o = txn.order_id();
  EXPECT_EQ(o, scale_.initial_orders_per_district + 1);
  // District counter advanced.
  EXPECT_EQ(DistrictRow(1, 3)[db_.d_next_o_id].AsInt64(), o + 1);
  // ORDER, NEW-ORDER, ORDER-LINE rows exist.
  EXPECT_TRUE(db_.orders->LookupPk(Key(1, 3, o)).has_value());
  EXPECT_TRUE(db_.new_order->LookupPk(Key(1, 3, o)).has_value());
  EXPECT_EQ(db_.order_line->ScanPkPrefix(Key(1, 3, o)).size(), 3u);
  EXPECT_GT(txn.total(), Money());
  ExpectConsistent(/*strict=*/true);
}

TEST_P(TpccTxnTest, NewOrderUpdatesStock) {
  Row before = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 1;
  input.c_id = 1;
  input.lines = {{7, 5}};
  NewOrderTxn txn(&db_, input);
  ASSERT_TRUE(Execute(txn).status.ok());
  Row after = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  int64_t q0 = before[db_.s_quantity].AsInt64();
  int64_t q1 = after[db_.s_quantity].AsInt64();
  EXPECT_EQ(q1, q0 - 5 >= 10 ? q0 - 5 : q0 - 5 + 91);
  EXPECT_EQ(after[db_.s_ytd].AsInt64(), before[db_.s_ytd].AsInt64() + 5);
  EXPECT_EQ(after[db_.s_order_cnt].AsInt64(),
            before[db_.s_order_cnt].AsInt64() + 1);
}

TEST_P(TpccTxnTest, NewOrderRollbackLeavesNoTrace) {
  Row stock_before = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  int64_t next_before = DistrictRow(1, 3)[db_.d_next_o_id].AsInt64();
  NewOrderInput input;
  input.w_id = 1;
  input.d_id = 3;
  input.c_id = 5;
  input.lines = {{7, 5}, {8, 1}};
  input.rollback = true;  // Unused item on the final line.
  NewOrderTxn txn(&db_, input);
  ExecResult result = Execute(txn);
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
  // No order rows remain.
  int64_t o = next_before;
  EXPECT_FALSE(db_.orders->LookupPk(Key(1, 3, o)).has_value());
  EXPECT_FALSE(db_.new_order->LookupPk(Key(1, 3, o)).has_value());
  EXPECT_TRUE(db_.order_line->ScanPkPrefix(Key(1, 3, o)).empty());
  // Stock restored.
  Row stock_after = *db_.stock->Get(*db_.stock->LookupPk(Key(1, 7)));
  EXPECT_EQ(stock_after[db_.s_ytd].AsInt64(),
            stock_before[db_.s_ytd].AsInt64());
  if (Decomposed()) {
    EXPECT_TRUE(result.compensated);
    // Compensation consumed the order number (semantic, not physical undo).
    EXPECT_EQ(DistrictRow(1, 3)[db_.d_next_o_id].AsInt64(), next_before + 1);
    ExpectConsistent(/*strict=*/false);
  } else {
    // The baseline rolled back physically: the counter is untouched.
    EXPECT_EQ(DistrictRow(1, 3)[db_.d_next_o_id].AsInt64(), next_before);
    ExpectConsistent(/*strict=*/true);
  }
}

TEST_P(TpccTxnTest, PaymentById) {
  Money amount = Money::FromDollars(150);
  Money w_before = WarehouseRow(1)[db_.w_ytd].AsMoney();
  Money d_before = DistrictRow(1, 2)[db_.d_ytd].AsMoney();
  Row c_before = CustomerRow(1, 2, 9);

  PaymentInput input;
  input.w_id = 1;
  input.d_id = 2;
  input.c_w_id = 1;
  input.c_d_id = 2;
  input.by_last_name = false;
  input.c_id = 9;
  input.amount = amount;
  PaymentTxn txn(&db_, input);
  ExecResult result = Execute(txn);
  ASSERT_TRUE(result.status.ok());
  if (Decomposed()) EXPECT_EQ(result.steps_completed, 3);

  EXPECT_EQ(WarehouseRow(1)[db_.w_ytd].AsMoney(), w_before + amount);
  EXPECT_EQ(DistrictRow(1, 2)[db_.d_ytd].AsMoney(), d_before + amount);
  Row c_after = CustomerRow(1, 2, 9);
  EXPECT_EQ(c_after[db_.c_balance].AsMoney(),
            c_before[db_.c_balance].AsMoney() - amount);
  EXPECT_EQ(c_after[db_.c_ytd_payment].AsMoney(),
            c_before[db_.c_ytd_payment].AsMoney() + amount);
  EXPECT_EQ(c_after[db_.c_payment_cnt].AsInt64(),
            c_before[db_.c_payment_cnt].AsInt64() + 1);
  // A history row was written.
  EXPECT_TRUE(db_.history
                  ->LookupPk(Key(1, 2, 9,
                                 c_after[db_.c_payment_cnt].AsInt64()))
                  .has_value());
  ExpectConsistent(/*strict=*/true);
}

TEST_P(TpccTxnTest, PaymentByLastName) {
  PaymentInput input;
  input.w_id = 1;
  input.d_id = 1;
  input.c_w_id = 1;
  input.c_d_id = 1;
  input.by_last_name = true;
  input.c_last = CustomerLastName(0);  // Customer 1's name.
  input.amount = Money::FromDollars(10);
  PaymentTxn txn(&db_, input);
  ASSERT_TRUE(Execute(txn).status.ok());
  EXPECT_GT(txn.resolved_customer(), 0);
  ExpectConsistent(/*strict=*/true);
}

TEST_P(TpccTxnTest, OrderStatusReportsLastOrder) {
  // Create a fresh order for customer 5 so the "last order" is known.
  NewOrderInput no_input;
  no_input.w_id = 1;
  no_input.d_id = 4;
  no_input.c_id = 5;
  no_input.lines = {{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  NewOrderTxn no_txn(&db_, no_input);
  ASSERT_TRUE(Execute(no_txn).status.ok());

  OrderStatusInput input;
  input.w_id = 1;
  input.d_id = 4;
  input.by_last_name = false;
  input.c_id = 5;
  OrderStatusTxn txn(&db_, input);
  ASSERT_TRUE(Execute(txn).status.ok());
  ASSERT_TRUE(txn.found_order());
  EXPECT_EQ(txn.last_order_id(), no_txn.order_id());
  EXPECT_EQ(txn.line_count(), 4);
  EXPECT_EQ(txn.order_line_count_field(), 4);
}

TEST_P(TpccTxnTest, DeliveryDeliversOldestPerDistrict) {
  // Queue one new order in districts 1 and 2.
  for (int64_t d : {1, 2}) {
    NewOrderInput input;
    input.w_id = 1;
    input.d_id = d;
    input.c_id = 3;
    input.lines = {{1, 1}, {2, 1}};
    NewOrderTxn txn(&db_, input);
    ASSERT_TRUE(Execute(txn).status.ok());
  }
  Money balance_before =
      CustomerRow(1, 1, 3)[db_.c_balance].AsMoney();

  DeliveryTxn delivery(&db_, DeliveryInput{1, 7});
  ExecResult result = Execute(delivery);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(delivery.delivered_count(), 2);
  EXPECT_EQ(delivery.skipped_districts(), 8);
  if (Decomposed()) {
    EXPECT_EQ(result.steps_completed, 12);  // D1 + 10x D2 + D3.
  }
  // New-order queue drained; carrier stamped; customer credited.
  EXPECT_EQ(db_.new_order->size(), 0u);
  int64_t o = scale_.initial_orders_per_district + 1;
  Row order = *db_.orders->Get(*db_.orders->LookupPk(Key(1, 1, o)));
  EXPECT_EQ(order[db_.o_carrier_id].AsInt64(), 7);
  EXPECT_GT(CustomerRow(1, 1, 3)[db_.c_balance].AsMoney(), balance_before);
  ExpectConsistent(/*strict=*/true);
}

TEST_P(TpccTxnTest, DeliverySkipsEmptyDistricts) {
  DeliveryTxn delivery(&db_, DeliveryInput{1, 3});
  ASSERT_TRUE(Execute(delivery).status.ok());
  EXPECT_EQ(delivery.delivered_count(), 0);
  EXPECT_EQ(delivery.skipped_districts(), 10);
}

TEST_P(TpccTxnTest, StockLevelCountsLowStock) {
  StockLevelInput input;
  input.w_id = 1;
  input.d_id = 1;
  input.threshold = 101;  // Every item is below 101: counts all distinct.
  StockLevelTxn txn(&db_, input);
  ASSERT_TRUE(Execute(txn).status.ok());
  EXPECT_GT(txn.low_stock(), 0);

  StockLevelInput none = input;
  none.threshold = 0;  // Nothing is below 0.
  StockLevelTxn txn_none(&db_, none);
  ASSERT_TRUE(Execute(txn_none).status.ok());
  EXPECT_EQ(txn_none.low_stock(), 0);
}

TEST_P(TpccTxnTest, MixedSequenceStaysConsistent) {
  Rng rng(99);
  InputGenConfig config;
  config.scale = scale_;
  InputGenerator gen(config, 1234);
  int compensated = 0;
  for (int i = 0; i < 60; ++i) {
    switch (gen.NextType()) {
      case TxnType::kNewOrder: {
        NewOrderTxn txn(&db_, gen.NextNewOrder());
        ExecResult r = Execute(txn);
        compensated += r.compensated;
        break;
      }
      case TxnType::kPayment: {
        PaymentTxn txn(&db_, gen.NextPayment());
        Execute(txn);
        break;
      }
      case TxnType::kOrderStatus: {
        OrderStatusTxn txn(&db_, gen.NextOrderStatus());
        Execute(txn);
        break;
      }
      case TxnType::kDelivery: {
        DeliveryTxn txn(&db_, gen.NextDelivery());
        Execute(txn);
        break;
      }
      case TxnType::kStockLevel: {
        StockLevelTxn txn(&db_, gen.NextStockLevel());
        Execute(txn);
        break;
      }
    }
  }
  ExpectConsistent(/*strict=*/compensated == 0);
  // Every lock was released.
  lock::LockManager& lm = engine_->lock_manager();
  EXPECT_EQ(lm.HolderCount(db_.DistrictItem(1, 1)), 0u);
  EXPECT_EQ(lm.HolderCount(db_.WarehouseItem(1)), 0u);
}

}  // namespace
}  // namespace accdb::tpcc
