// Runtime assertion auditor (EngineConfig::audit_assertions) end to end on
// the Section 4 order-processing system, under the deterministic simulator:
//
//  * Under the sound (derived == hand) interference table an audited run
//    never observes a falsified assertion instance — the auditor's numbers
//    are the machine-checked form of the paper's soundness argument.
//  * With one table entry deliberately weakened after construction, the
//    classic unsound interleaving (bill slipping between the steps of a
//    new_order on the same order) actually happens — and the auditor
//    catches the violated I1 instance at the moment bill claims it.

#include <gtest/gtest.h>

#include <memory>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/interference.h"
#include "acc/sim_env.h"
#include "orderproc/order_system.h"
#include "orderproc/transactions.h"
#include "sim/simulation.h"
#include "storage/database.h"

namespace accdb::orderproc {
namespace {

using acc::AccConflictResolver;
using acc::Engine;
using acc::EngineConfig;
using acc::ExecMode;
using acc::ExecResult;
using acc::Interference;
using acc::SimExecutionEnv;

class SpecAuditTest : public ::testing::Test {
 protected:
  SpecAuditTest() : sys_(&db_), resolver_(&sys_.interference) {
    sys_.LoadItems(/*item_count=*/50, /*stock_level=*/100,
                   /*price_cents=*/250);
    EngineConfig config;
    config.charge_acc_overheads = false;
    config.audit_assertions = true;
    engine_ = std::make_unique<Engine>(&db_, &resolver_, config);
    engine_->set_assertion_auditor(sys_.specs.MakeAuditor());
  }

  // Runs a 4-line new_order with think pauses between steps and a bill on
  // the same (not-yet-committed) order id launched mid-flight.
  void RunBillAgainstInFlightNewOrder() {
    sim::Simulation sim;
    SimExecutionEnv env_no(sim, nullptr), env_bill(sim, nullptr);
    NewOrderTxn no(&sys_, 1, {{1, 2}, {2, 2}, {3, 2}, {4, 2}});
    no.set_pause_between_steps(0.02);
    int64_t expected_order = db_.ReadVariable(*sys_.order_counter);
    std::unique_ptr<BillTxn> bill;
    ExecResult r_no, r_bill;
    sim.Spawn("new_order", [&] {
      r_no = engine_->Execute(no, env_no, ExecMode::kAccDecomposed);
    });
    sim.Spawn("bill", [&] {
      sim.Delay(0.04);  // Between two NO2 steps.
      bill = std::make_unique<BillTxn>(&sys_, expected_order);
      r_bill = engine_->Execute(*bill, env_bill, ExecMode::kAccDecomposed);
    });
    sim.Run();
    ASSERT_TRUE(r_no.status.ok());
    ASSERT_TRUE(r_bill.status.ok());
  }

  storage::Database db_;
  OrderSystem sys_;
  AccConflictResolver resolver_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SpecAuditTest, SoundTableAuditsCleanly) {
  RunBillAgainstInFlightNewOrder();
  const acc::EngineMetrics& metrics = engine_->metrics();
  EXPECT_GT(metrics.assertions_audited, 0u);
  EXPECT_EQ(metrics.assertion_violations, 0u)
      << metrics.first_assertion_violation;
  EXPECT_TRUE(sys_.CheckConsistency());
}

TEST_F(SpecAuditTest, WeakenedEntryIsDetected) {
  // Erase the entry that makes bill's initiation check wait for the
  // in-flight new_order on the same order — the exact soundness hole the
  // construction-time cross-check would refuse if it were in the hand
  // table (here it is injected after construction, behind the check's
  // back). Bill now slips between two NO2 steps, its initial assertion
  // I1^{o} is granted while the order has fewer lines than
  // num_distinct_items — and the auditor sees the falsified instance.
  sys_.interference.Set(sys_.prefix_no_partial, sys_.assert_i1,
                        Interference::kNone);
  RunBillAgainstInFlightNewOrder();
  const acc::EngineMetrics& metrics = engine_->metrics();
  EXPECT_GT(metrics.assertion_violations, 0u);
  EXPECT_FALSE(metrics.first_assertion_violation.empty());
}

}  // namespace
}  // namespace accdb::orderproc
