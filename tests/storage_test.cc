#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "storage/database.h"
#include "storage/table.h"
#include "storage/value.h"

namespace accdb::storage {
namespace {

Schema TwoColSchema() {
  Schema schema;
  schema.columns = {{"id", ColumnType::kInt64}, {"name", ColumnType::kString}};
  schema.key_columns = {0};
  return schema;
}

// --- Value / CompositeKey ---

TEST(ValueTest, Types) {
  EXPECT_EQ(Value(int64_t{5}).type(), ColumnType::kInt64);
  EXPECT_EQ(Value(1.5).type(), ColumnType::kDouble);
  EXPECT_EQ(Value(Money::FromCents(3)).type(), ColumnType::kMoney);
  EXPECT_EQ(Value("abc").type(), ColumnType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(Money::FromCents(10)).AsMoney().cents(), 10);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(3), Value(3));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_FALSE(Value(3) == Value("3"));
  EXPECT_LT(Value(3), Value(4));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Value(Money::FromCents(150)).ToString(), "$1.50");
}

TEST(CompositeKeyTest, LexicographicOrder) {
  EXPECT_TRUE(CompositeKeyLess(Key(1, 2), Key(1, 3)));
  EXPECT_TRUE(CompositeKeyLess(Key(1, 9), Key(2, 0)));
  EXPECT_FALSE(CompositeKeyLess(Key(2, 0), Key(1, 9)));
}

TEST(CompositeKeyTest, PrefixSortsFirst) {
  EXPECT_TRUE(CompositeKeyLess(Key(1), Key(1, 0)));
  EXPECT_FALSE(CompositeKeyLess(Key(1, 0), Key(1)));
}

// --- Schema ---

TEST(SchemaTest, ColumnIndex) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("name"), 1);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, ValidateArity) {
  Schema s = TwoColSchema();
  EXPECT_TRUE(s.Validate({Value(1), Value("a")}).ok());
  EXPECT_FALSE(s.Validate({Value(1)}).ok());
}

TEST(SchemaTest, ValidateTypes) {
  Schema s = TwoColSchema();
  EXPECT_FALSE(s.Validate({Value("bad"), Value("a")}).ok());
}

// --- Table ---

TEST(TableTest, InsertAndGet) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("one")});
  ASSERT_TRUE(id.ok());
  const Row* row = t.Get(*id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "one");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, DuplicatePkRejected) {
  Table t(0, "t", TwoColSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value("a")}).ok());
  auto dup = t.Insert({Value(1), Value("b")});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, LookupPk) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(5), Value("five")});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(t.LookupPk(Key(5)), *id);
  EXPECT_FALSE(t.LookupPk(Key(6)).has_value());
}

TEST(TableTest, UpdateReplacesRow) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(t.Update(*id, {Value(1), Value("b")}).ok());
  EXPECT_EQ((*t.Get(*id))[1].AsString(), "b");
}

TEST(TableTest, UpdateCannotChangeKey) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(t.Update(*id, {Value(2), Value("a")}).ok());
}

TEST(TableTest, UpdateColumns) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(t.UpdateColumns(*id, {{1, Value("z")}}).ok());
  EXPECT_EQ((*t.Get(*id))[1].AsString(), "z");
  // Key column updates are rejected.
  EXPECT_FALSE(t.UpdateColumns(*id, {{0, Value(9)}}).ok());
  // Type mismatches are rejected.
  EXPECT_FALSE(t.UpdateColumns(*id, {{1, Value(9)}}).ok());
}

TEST(TableTest, DeleteRemovesRowAndIndex) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(t.Delete(*id).ok());
  EXPECT_EQ(t.Get(*id), nullptr);
  EXPECT_FALSE(t.LookupPk(Key(1)).has_value());
  EXPECT_FALSE(t.Delete(*id).ok());
}

TEST(TableTest, RowIdsNotReused) {
  Table t(0, "t", TwoColSchema());
  auto id1 = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(t.Delete(*id1).ok());
  auto id2 = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id1, *id2);
}

TEST(TableTest, InsertWithIdRestoresRow) {
  Table t(0, "t", TwoColSchema());
  auto id = t.Insert({Value(1), Value("a")});
  ASSERT_TRUE(id.ok());
  Row saved = *t.Get(*id);
  ASSERT_TRUE(t.Delete(*id).ok());
  ASSERT_TRUE(t.InsertWithId(*id, saved).ok());
  EXPECT_EQ(t.LookupPk(Key(1)), *id);
}

Schema CompositeSchema() {
  Schema schema;
  schema.columns = {{"a", ColumnType::kInt64},
                    {"b", ColumnType::kInt64},
                    {"v", ColumnType::kInt64}};
  schema.key_columns = {0, 1};
  return schema;
}

TEST(TableTest, ScanPkPrefix) {
  Table t(0, "t", CompositeSchema());
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 4; ++b) {
      ASSERT_TRUE(t.Insert({Value(a), Value(b), Value(a * 10 + b)}).ok());
    }
  }
  std::vector<RowId> hits = t.ScanPkPrefix(Key(2));
  ASSERT_EQ(hits.size(), 4u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ((*t.Get(hits[i]))[0].AsInt64(), 2);
    EXPECT_EQ((*t.Get(hits[i]))[1].AsInt64(), static_cast<int64_t>(i + 1));
  }
  EXPECT_TRUE(t.ScanPkPrefix(Key(9)).empty());
}

TEST(TableTest, MinPkPrefix) {
  Table t(0, "t", CompositeSchema());
  ASSERT_TRUE(t.Insert({Value(1), Value(7), Value(0)}).ok());
  ASSERT_TRUE(t.Insert({Value(1), Value(3), Value(0)}).ok());
  ASSERT_TRUE(t.Insert({Value(2), Value(1), Value(0)}).ok());
  auto min1 = t.MinPkPrefix(Key(1));
  ASSERT_TRUE(min1.has_value());
  EXPECT_EQ((*t.Get(*min1))[1].AsInt64(), 3);
  EXPECT_FALSE(t.MinPkPrefix(Key(5)).has_value());
}

TEST(TableTest, SecondaryIndexLookup) {
  Table t(0, "t", TwoColSchema());
  IndexId by_name = t.AddIndex("by_name", {1});
  auto id1 = t.Insert({Value(1), Value("bob")});
  auto id2 = t.Insert({Value(2), Value("bob")});
  auto id3 = t.Insert({Value(3), Value("eve")});
  ASSERT_TRUE(id1.ok() && id2.ok() && id3.ok());
  std::vector<RowId> bobs = t.LookupIndex(by_name, Key("bob"));
  EXPECT_EQ(bobs, (std::vector<RowId>{*id1, *id2}));
  EXPECT_TRUE(t.LookupIndex(by_name, Key("zed")).empty());
}

TEST(TableTest, SecondaryIndexMaintainedOnUpdateDelete) {
  Table t(0, "t", TwoColSchema());
  IndexId by_name = t.AddIndex("by_name", {1});
  auto id = t.Insert({Value(1), Value("bob")});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(t.UpdateColumns(*id, {{1, Value("eve")}}).ok());
  EXPECT_TRUE(t.LookupIndex(by_name, Key("bob")).empty());
  EXPECT_EQ(t.LookupIndex(by_name, Key("eve")).size(), 1u);
  ASSERT_TRUE(t.Delete(*id).ok());
  EXPECT_TRUE(t.LookupIndex(by_name, Key("eve")).empty());
}

TEST(TableTest, ScanIndexPrefix) {
  Table t(0, "t", CompositeSchema());
  IndexId by_b = t.AddIndex("by_b", {1, 0});
  for (int a = 1; a <= 3; ++a) {
    ASSERT_TRUE(t.Insert({Value(a), Value(a % 2), Value(0)}).ok());
  }
  EXPECT_EQ(t.ScanIndexPrefix(by_b, Key(1)).size(), 2u);  // a = 1 and 3.
  EXPECT_EQ(t.ScanIndexPrefix(by_b, Key(0)).size(), 1u);  // a = 2.
}

// --- Sharded tables ---

TEST(RowIdTest, ShardEncodingRoundTrips) {
  const RowId id = MakeRowId(5, 42);
  EXPECT_EQ(RowIdShard(id), 5u);
  EXPECT_EQ(RowIdSeq(id), 42u);
  // Shard 0 ids are plain sequence numbers (unsharded compatibility).
  EXPECT_EQ(MakeRowId(0, 7), RowId{7});
  EXPECT_EQ(RowIdShard(kRowIdSeqMask), 0u);
}

TEST(ShardedTableTest, InsertRoutesByFirstKeyColumn) {
  Table t(0, "t", CompositeSchema(), /*shards=*/4);
  EXPECT_EQ(t.shards(), 4u);
  for (int a = 0; a < 8; ++a) {
    auto id = t.Insert({Value(a), Value(1), Value(a)});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(RowIdShard(*id), static_cast<size_t>(a % 4));
    EXPECT_EQ(t.LookupPk(Key(a, 1)), *id);
  }
  EXPECT_EQ(t.size(), 8u);
  // Per-shard sequences both start at 1: distinct shards, same seq.
  auto id0 = t.LookupPk(Key(0, 1));
  auto id1 = t.LookupPk(Key(1, 1));
  ASSERT_TRUE(id0 && id1);
  EXPECT_EQ(RowIdSeq(*id0), RowIdSeq(*id1));
  EXPECT_NE(*id0, *id1);
}

TEST(ShardedTableTest, SingleShardIdsMatchHistoricalSequence) {
  Table t(0, "t", TwoColSchema());
  for (int i = 1; i <= 3; ++i) {
    auto id = t.Insert({Value(i), Value("x")});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, static_cast<RowId>(i));
  }
}

TEST(ShardedTableTest, PrefixedScanTouchesOneShardMergedScanSortsByKey) {
  Table t(0, "t", CompositeSchema(), /*shards=*/3);
  for (int a = 5; a >= 1; --a) {
    for (int b = 1; b <= 3; ++b) {
      ASSERT_TRUE(t.Insert({Value(a), Value(b), Value(a * 10 + b)}).ok());
    }
  }
  // Routing prefix: single shard, key order within it.
  std::vector<RowId> one = t.ScanPkPrefix(Key(4));
  ASSERT_EQ(one.size(), 3u);
  for (RowId id : one) EXPECT_EQ(RowIdShard(id), 4u % 3);
  // Empty prefix: all 15 rows merged across shards in global key order.
  std::vector<RowId> all = t.ScanPkPrefix({});
  ASSERT_EQ(all.size(), 15u);
  for (size_t i = 0; i < all.size(); ++i) {
    const Row* row = t.Get(all[i]);
    ASSERT_NE(row, nullptr);
    EXPECT_EQ((*row)[0].AsInt64(), static_cast<int64_t>(i / 3 + 1));
    EXPECT_EQ((*row)[1].AsInt64(), static_cast<int64_t>(i % 3 + 1));
  }
  // MinPkPrefix agrees with the merged order.
  auto min = t.MinPkPrefix({});
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(*min, all[0]);
}

TEST(ShardedTableTest, RoutableAndNonRoutableIndexes) {
  Table t(0, "t", CompositeSchema(), /*shards=*/4);
  // by_ab leads with the routing column; by_b does not and must merge.
  IndexId by_ab = t.AddIndex("by_ab", {0, 1});
  IndexId by_b = t.AddIndex("by_b", {1});
  std::vector<RowId> inserted;
  for (int a = 1; a <= 6; ++a) {
    auto id = t.Insert({Value(a), Value(a % 2), Value(0)});
    ASSERT_TRUE(id.ok());
    inserted.push_back(*id);
  }
  EXPECT_EQ(t.LookupIndex(by_ab, Key(3, 1)).size(), 1u);
  // Non-routable lookup gathers from every shard, RowId-sorted.
  std::vector<RowId> odd = t.LookupIndex(by_b, Key(1));
  ASSERT_EQ(odd.size(), 3u);
  EXPECT_TRUE(std::is_sorted(odd.begin(), odd.end()));
  for (RowId id : odd) EXPECT_EQ((*t.Get(id))[0].AsInt64() % 2, 1);
  // Prefix scan over the non-routable index: key order across shards.
  std::vector<RowId> scanned = t.ScanIndexPrefix(by_b, {});
  ASSERT_EQ(scanned.size(), 6u);
  for (size_t i = 1; i < scanned.size(); ++i) {
    EXPECT_LE((*t.Get(scanned[i - 1]))[1].AsInt64(),
              (*t.Get(scanned[i]))[1].AsInt64());
  }
}

TEST(ShardedTableTest, InsertWithIdRejectsShardMismatch) {
  Table t(0, "t", CompositeSchema(), /*shards=*/4);
  auto id = t.Insert({Value(2), Value(1), Value(9)});
  ASSERT_TRUE(id.ok());
  Row saved = *t.Get(*id);
  ASSERT_TRUE(t.Delete(*id).ok());
  // An id whose shard bits disagree with the key's route is rejected.
  RowId wrong = MakeRowId(1, RowIdSeq(*id));
  EXPECT_EQ(t.InsertWithId(wrong, saved).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(t.InsertWithId(*id, saved).ok());
  EXPECT_EQ(t.LookupPk(Key(2, 1)), *id);
}

TEST(ShardedTableTest, ConcurrentInsertsAcrossShards) {
  constexpr int kShards = 8;
  constexpr int kRowsPerShard = 500;
  Table t(0, "t", CompositeSchema(), kShards);
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int w = 0; w < kShards; ++w) {
    threads.emplace_back([&t, w] {
      for (int b = 1; b <= kRowsPerShard; ++b) {
        ASSERT_TRUE(t.Insert({Value(w), Value(b), Value(w * 1000 + b)}).ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(t.size(), static_cast<size_t>(kShards * kRowsPerShard));
  for (int w = 0; w < kShards; ++w) {
    EXPECT_EQ(t.ScanPkPrefix(Key(w)).size(),
              static_cast<size_t>(kRowsPerShard));
  }
}

// --- Database ---

TEST(DatabaseTest, CreateAndLookup) {
  Database db;
  Table* t = db.CreateTable("orders", TwoColSchema());
  EXPECT_EQ(db.GetTable("orders"), t);
  EXPECT_EQ(db.GetTable(t->id()), t);
  EXPECT_EQ(db.GetTable("missing"), nullptr);
  EXPECT_EQ(db.table_count(), 1u);
}

TEST(DatabaseTest, Variables) {
  Database db;
  Table* counter = db.CreateVariable("counter", 41);
  EXPECT_EQ(db.ReadVariable(*counter), 41);
  ASSERT_TRUE(
      counter->UpdateColumns(kVariableRowId, {{1, Value(42)}}).ok());
  EXPECT_EQ(db.ReadVariable(*counter), 42);
}

}  // namespace
}  // namespace accdb::storage
