// Multi-threaded lock-manager stress: real OS threads hammer one
// LockManager with random conventional, assertional, and compensation locks
// across random items, with deadlock-victim aborts resolved through the
// real-thread wait protocol (ThreadExecutionEnv as the blocking shim).
// This is the TSan workhorse for the lock manager's latching: tsan_smoke
// runs it under -fsanitize=thread.
//
// Invariants checked:
//   * the run drains (every worker finishes; no lost wakeup wedges),
//   * CheckIndexConsistency holds mid-run (latched probe) and after,
//   * the lock table is empty after every transaction released,
//   * stats counters are conserved: every request is an immediate grant, a
//     wait, or a deadlock abort; victims never exceed reported deadlocks.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "acc/catalog.h"
#include "acc/conflict_resolver.h"
#include "acc/interference.h"
#include "common/rng.h"
#include "lock/lock_manager.h"
#include "runtime/thread_env.h"

namespace accdb::lock {
namespace {

// Routes lock-manager notifications to the owning worker's env. Txn ids are
// striped per worker (worker w uses w+1, w+1+W, w+1+2W, ...), so the owner
// is a pure function of the id and the routing table is immutable while
// threads run.
class StripedRouter : public LockManager::Listener {
 public:
  StripedRouter(std::vector<runtime::ThreadExecutionEnv>* envs)
      : envs_(envs) {}

  void OnGranted(TxnId txn) override { EnvOf(txn).LockGranted(txn); }
  void OnWaiterAborted(TxnId txn) override { EnvOf(txn).LockAborted(txn); }

 private:
  runtime::ThreadExecutionEnv& EnvOf(TxnId txn) {
    return (*envs_)[(txn - 1) % envs_->size()];
  }

  std::vector<runtime::ThreadExecutionEnv>* envs_;
};

struct MtStressResult {
  uint64_t completed = 0;
  uint64_t victim_aborts = 0;
  LockManager::Stats stats;
};

MtStressResult RunMtStress(uint64_t seed, size_t partitions, int workers,
                           int txns_per_worker, int items,
                           bool with_assertions) {
  acc::Catalog catalog;
  acc::InterferenceTable table;
  ActorId writer = catalog.RegisterStepType("w");
  AssertionId assertion = catalog.RegisterAssertion("a", 1);
  table.Set(writer, assertion, acc::Interference::kIfSameKey);
  acc::AccConflictResolver resolver(&table);

  LockManagerOptions options;
  options.partitions = partitions;
  LockManager lm(&resolver, std::move(options));
  EXPECT_EQ(lm.partition_count(), partitions);
  std::vector<runtime::ThreadExecutionEnv> envs(workers);
  StripedRouter router(&envs);
  lm.set_listener(&router);

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> victim_aborts{0};

  Rng seeder(seed);
  std::vector<uint64_t> worker_seeds;
  for (int w = 0; w < workers; ++w) worker_seeds.push_back(seeder.Next());

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      runtime::ThreadExecutionEnv& env = envs[w];
      Rng rng(worker_seeds[w]);
      for (int t = 0; t < txns_per_worker; ++t) {
        const TxnId txn = static_cast<TxnId>(w + 1) +
                          static_cast<TxnId>(t) * workers;
        bool aborted = false;
        int ops = static_cast<int>(rng.UniformInt(1, 6));
        for (int op = 0; op < ops && !aborted; ++op) {
          ItemId item = ItemId::Row(1, rng.UniformInt(1, items));
          double choice = rng.UniformDouble();
          if (with_assertions && choice < 0.15) {
            RequestContext ctx;
            ctx.actor = writer;
            ctx.assertion = assertion;
            ctx.assertion_instance = static_cast<uint32_t>(op);
            ctx.keys = {rng.UniformInt(1, 4)};
            lm.GrantUnconditional(txn, item, LockMode::kAssert, ctx);
          } else if (with_assertions && choice < 0.25) {
            RequestContext ctx;
            lm.GrantUnconditional(txn, item, LockMode::kComp, ctx);
          } else {
            RequestContext ctx;
            ctx.actor = writer;
            ctx.keys = {rng.UniformInt(1, 4)};
            LockMode mode = rng.Bernoulli(0.5) ? LockMode::kS : LockMode::kX;
            env.PrepareWait(txn);
            Outcome outcome = lm.Request(txn, item, mode, std::move(ctx));
            bool granted;
            if (outcome == Outcome::kWaiting) {
              granted = env.AwaitLock(txn);
            } else {
              env.DiscardWait(txn);
              granted = outcome == Outcome::kGranted;
            }
            if (!granted) {
              aborted = true;
              ++victim_aborts;
            }
          }
        }
        lm.ReleaseAll(txn);
        // The consistency probe is latched, so sampling it mid-run from
        // many threads is exactly what this test is for. Every 16th txn
        // keeps the O(table) scan from dominating.
        if (t % 16 == 0) {
          std::string violation;
          EXPECT_TRUE(lm.CheckIndexConsistency(&violation)) << violation;
        }
        if (!aborted) ++completed;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MtStressResult result;
  result.completed = completed.load();
  result.victim_aborts = victim_aborts.load();
  {
    std::string violation;
    EXPECT_TRUE(lm.CheckIndexConsistency(&violation)) << violation;
  }
  result.stats = lm.StatsSnapshot();
  for (int i = 1; i <= items; ++i) {
    EXPECT_EQ(lm.HolderCount(ItemId::Row(1, i)), 0u);
    EXPECT_EQ(lm.QueueLength(ItemId::Row(1, i)), 0u);
  }
  return result;
}

// Parameterized over (seed, partition count): the same schedules drive the
// single-latch configuration (1 partition) and the striped two-tier
// configurations, including one where items spread across more partitions
// than there are hot items (64).
class LockMtStressTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    SeedsByPartitions, LockMtStressTest,
    ::testing::Combine(::testing::Values(11, 42, 20250806),
                       ::testing::Values(size_t{1}, size_t{4}, size_t{64})));

TEST_P(LockMtStressTest, ConventionalOnlyDrains) {
  const auto [seed, partitions] = GetParam();
  MtStressResult result =
      RunMtStress(seed, partitions, /*workers=*/8, /*txns_per_worker=*/120,
                  /*items=*/8, /*with_assertions=*/false);
  EXPECT_GT(result.completed, 200u);
  EXPECT_LE(result.victim_aborts, result.stats.deadlocks);
  // Conservation: every request resolved exactly one way. No compensation
  // contexts here, so the bounds are tight up to waiter kills.
  EXPECT_GE(result.stats.requests,
            result.stats.immediate_grants + result.stats.waits);
  EXPECT_LE(result.stats.requests,
            result.stats.immediate_grants + result.stats.waits +
                result.stats.deadlock_victim_aborts);
}

TEST_P(LockMtStressTest, WithAssertionalModesDrains) {
  const auto [seed, partitions] = GetParam();
  MtStressResult result =
      RunMtStress(seed, partitions, /*workers=*/8, /*txns_per_worker=*/120,
                  /*items=*/8, /*with_assertions=*/true);
  EXPECT_GT(result.completed, 200u);
  EXPECT_GE(result.stats.requests,
            result.stats.immediate_grants + result.stats.waits);
}

}  // namespace
}  // namespace accdb::lock
