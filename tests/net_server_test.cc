// Serving-layer integration tests: a real AccdbServer on an ephemeral
// loopback port, driven by real client connections. Covers the happy path
// (exec + stats RPCs), multi-connection load with counter conservation,
// connection death mid-transaction (the §3.4 guarantee: the execution —
// including compensation — completes even though nobody is listening),
// per-request deadlines expiring in the queue and during lock waits,
// admission-control backpressure, protocol-violation handling, and graceful
// drain. Runs under TSan via the tsan_smoke nested build.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "server/server.h"
#include "tpcc/consistency.h"

namespace accdb::server {
namespace {

ServerOptions SmallServer(bool decomposed, int workers, size_t max_queue) {
  ServerOptions options;
  options.workload.mode = decomposed ? acc::ExecMode::kAccDecomposed
                                     : acc::ExecMode::kSerializable;
  options.workload.seed = 20260806;
  options.workers = workers;
  options.max_queue = max_queue;
  options.cost_scale = 0;  // No modeled compute: tests drive timing.
  return options;
}

// The three ServerStats conservation invariants (valid after Shutdown).
void ExpectStatsConserve(const ServerStats& s) {
  EXPECT_EQ(s.requests_received,
            s.requests_admitted + s.admission_rejects + s.shutdown_rejects);
  EXPECT_EQ(s.requests_admitted,
            s.committed + s.aborted + s.deadline_exceeded_queue +
                s.deadline_exceeded_exec + s.internal_errors);
  EXPECT_EQ(s.requests_admitted, s.responses_sent + s.responses_dropped);
}

void ExpectConsistent(AccdbServer& server) {
  ServerStats stats = server.StatsSnapshot();
  tpcc::ConsistencyReport report = tpcc::CheckConsistency(
      server.system().db(), /*strict=*/stats.compensated == 0);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? "unknown"
                                 : report.violations[0]);
}

TEST(NetServerTest, ExecCommitAndStatsRpc) {
  AccdbServer server(SmallServer(/*decomposed=*/true, 2, 16));
  ASSERT_TRUE(server.Start().ok());

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    auto resp = client->Execute(tpcc::TxnType::kPayment, /*deadline_ms=*/0,
                                /*retry_limit=*/4);
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    EXPECT_EQ(resp->status, net::WireStatus::kOk)
        << net::WireStatusName(resp->status);
  }

  auto stats_json = client->FetchStatsJson();
  ASSERT_TRUE(stats_json.ok());
  auto parsed = Json::Parse(*stats_json);
  ASSERT_TRUE(parsed.has_value()) << *stats_json;
  EXPECT_EQ(parsed->Find("committed")->AsUint(), 5u);
  EXPECT_EQ(parsed->Find("requests_admitted")->AsUint(), 5u);
  EXPECT_TRUE(parsed->Has("queue_depth_peak"));

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.committed, 5u);
  EXPECT_EQ(stats.responses_sent, 5u);
  EXPECT_EQ(stats.responses_dropped, 0u);
  EXPECT_EQ(stats.stats_requests, 1u);
  ExpectStatsConserve(stats);
  ExpectConsistent(server);
}

// N client threads in closed loops against both systems; afterwards the
// counters must conserve exactly and the database must verify.
class NetServerModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(NetServerModeTest, MultiClientLoadConservesStats) {
  const bool decomposed = GetParam();
  AccdbServer server(SmallServer(decomposed, 3, 64));
  ASSERT_TRUE(server.Start().ok());

  net::LoadGenOptions options;
  options.connections = 4;
  options.seconds = 0.5;
  options.retry_limit = 8;
  options.seed = 7;
  auto load = net::RunLoadGen(server.port(), options);
  ASSERT_TRUE(load.ok()) << load.status().message();
  EXPECT_GT(load->committed, 0u);
  EXPECT_EQ(load->transport_errors, 0u);

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  // Every client-side outcome has a server-side response (no deadlines or
  // rejects were configured, all connections outlived their requests).
  EXPECT_EQ(stats.responses_dropped, 0u);
  // Client view vs server view: every abort re-send is its own admitted
  // request server-side, counted as aborted there even when a later attempt
  // commits.
  EXPECT_EQ(stats.committed, load->committed);
  EXPECT_EQ(stats.aborted, load->aborted + load->retries);
  EXPECT_EQ(stats.requests_admitted, load->issued() + load->retries);
  if (!decomposed) EXPECT_EQ(stats.compensated, 0u);  // 2PL never does.
  ExpectConsistent(server);
}

INSTANTIATE_TEST_SUITE_P(BothSystems, NetServerModeTest,
                         ::testing::Values(true, false));

TEST(NetServerTest, KillClientMidTransactionStillCompletes) {
  // One worker. A slow transaction (modeled compute on) occupies it while a
  // victim request sits in the queue; the victim's connection dies before
  // its turn. The execution must still run to completion server-side — its
  // response is dropped, counters conserve, and the database verifies.
  ServerOptions options = SmallServer(/*decomposed=*/true, 1, 8);
  options.cost_scale = 1.0;  // Real sleeps for modeled costs...
  options.workload.compute_seconds = 0.02;  // ...padded per statement: the
  // slow transaction reliably outlives the victim's 50ms close window.
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker.
  auto slow = net::Client::Connect(server.port());
  ASSERT_TRUE(slow.ok());
  std::thread slow_call([&] {
    auto resp = slow->Execute(tpcc::TxnType::kNewOrder, 0, 0);
    EXPECT_TRUE(resp.ok());
  });

  // Queue the victim behind it, then kill its connection.
  auto victim = net::Client::Connect(server.port());
  ASSERT_TRUE(victim.ok());
  net::ExecRequest req;
  req.request_id = 1;
  req.txn_type = static_cast<uint8_t>(tpcc::TxnType::kPayment);
  std::string frame = net::EncodeFrame(net::Message(req));
  ASSERT_EQ(net::WriteFull(victim->fd(), frame.data(), frame.size()),
            net::IoResult::kOk);
  // Give the loop a moment to admit the request, then sever the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  victim->Close();

  slow_call.join();
  server.Shutdown();

  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  EXPECT_EQ(stats.requests_admitted, 2u);
  // Both executions completed; exactly the victim's response was dropped.
  EXPECT_EQ(stats.committed + stats.aborted, 2u);
  EXPECT_EQ(stats.responses_dropped, 1u);
  EXPECT_EQ(stats.responses_sent, 1u);
  ExpectConsistent(server);
}

TEST(NetServerTest, DeadlineExpiresInQueue) {
  // One worker occupied by a slow transaction; a 1ms-deadline request
  // queued behind it must come back DEADLINE_EXCEEDED without executing.
  ServerOptions options = SmallServer(/*decomposed=*/true, 1, 8);
  options.cost_scale = 1.0;
  options.workload.compute_seconds = 0.02;  // Slow txn outlives the 1ms
                                            // deadline by a wide margin.
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto slow = net::Client::Connect(server.port());
  ASSERT_TRUE(slow.ok());
  std::thread slow_call([&] {
    auto resp = slow->Execute(tpcc::TxnType::kNewOrder, 0, 0);
    EXPECT_TRUE(resp.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Execute(tpcc::TxnType::kPayment, /*deadline_ms=*/1,
                              /*retry_limit=*/0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, net::WireStatus::kDeadlineExceeded)
      << net::WireStatusName(resp->status);

  slow_call.join();
  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.deadline_exceeded_queue, 1u);
  ExpectStatsConserve(stats);
  ExpectConsistent(server);
}

TEST(NetServerTest, OverloadBackpressure) {
  // max_queue = 0: admission refuses everything, workers stay idle, and the
  // client sees OVERLOADED (mapped to a typed kOverloaded Status).
  AccdbServer server(SmallServer(/*decomposed=*/true, 1, /*max_queue=*/0));
  ASSERT_TRUE(server.Start().ok());

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Execute(tpcc::TxnType::kPayment, 0, /*retry_limit=*/0);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, net::WireStatus::kOverloaded);
  EXPECT_EQ(net::FromWireStatus(resp->status, "").code(),
            StatusCode::kOverloaded);

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.requests_admitted, 0u);
  ExpectStatsConserve(stats);
}

TEST(NetServerTest, MalformedFrameKillsConnection) {
  AccdbServer server(SmallServer(/*decomposed=*/true, 1, 8));
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  // An empty frame is connection-fatal.
  const char zeros[4] = {0, 0, 0, 0};
  ASSERT_EQ(net::WriteFull(fd->get(), zeros, sizeof(zeros)),
            net::IoResult::kOk);
  // The server must close the connection: the next read sees EOF.
  char buf[16];
  EXPECT_EQ(net::ReadFull(fd->get(), buf, 1), net::IoResult::kEof);

  // The server stays healthy for well-behaved clients.
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Execute(tpcc::TxnType::kPayment, 0, 4);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, net::WireStatus::kOk);

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.malformed_frames, 1u);
  ExpectStatsConserve(stats);
}

// Reads `n` messages from a raw connection, blocking until each arrives.
std::vector<net::Message> ReadMessages(int fd, net::FrameDecoder& decoder,
                                       size_t n) {
  std::vector<net::Message> out;
  while (out.size() < n) {
    net::Message msg;
    switch (decoder.Next(&msg)) {
      case net::DecodeResult::kMessage:
        out.push_back(std::move(msg));
        continue;
      case net::DecodeResult::kError:
        return out;
      case net::DecodeResult::kNeedMore:
        break;
    }
    char buf[4096];
    size_t got = 0;
    net::IoResult r = net::ReadSome(fd, buf, sizeof(buf), &got);
    if (r == net::IoResult::kWouldBlock) continue;
    if (r != net::IoResult::kOk) return out;
    decoder.Append(std::string_view(buf, got));
  }
  return out;
}

std::string ExecFrame(uint64_t id, tpcc::TxnType type) {
  net::ExecRequest req;
  req.request_id = id;
  req.txn_type = static_cast<uint8_t>(type);
  return net::EncodeFrame(net::Message(req));
}

TEST(NetServerTest, PipelinedRequestsDeliverInOrder) {
  // A slow new-order followed by fast payments, three workers: the payments
  // finish first on other workers, but responses must still come back in
  // arrival order (the parked out-of-order completions wait their turn).
  ServerOptions options = SmallServer(/*decomposed=*/true, 3, 32);
  options.cost_scale = 1.0;
  options.workload.compute_seconds = 0.02;  // New-order reliably slowest.
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  std::string batch = ExecFrame(1, tpcc::TxnType::kNewOrder);
  constexpr int kTotal = 6;
  for (uint64_t id = 2; id <= kTotal; ++id) {
    batch += ExecFrame(id, tpcc::TxnType::kPayment);
  }
  // One write carries the whole pipeline: the server decodes all frames
  // from a single readable wakeup.
  ASSERT_EQ(net::WriteFull(fd->get(), batch.data(), batch.size()),
            net::IoResult::kOk);

  net::FrameDecoder decoder;
  std::vector<net::Message> responses =
      ReadMessages(fd->get(), decoder, kTotal);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) {
    auto* resp = std::get_if<net::ExecResponse>(&responses[i]);
    ASSERT_NE(resp, nullptr);
    EXPECT_EQ(resp->request_id, static_cast<uint64_t>(i + 1))
        << "responses out of order at position " << i;
  }

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  EXPECT_EQ(stats.requests_admitted, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.responses_sent, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.responses_dropped, 0u);
  ExpectConsistent(server);
}

TEST(NetServerTest, KillMidPipelineDropsExactlyInFlightResponses) {
  // Four pipelined requests on one connection, one worker; the connection
  // dies while the first is still executing. Every admitted request still
  // runs to completion (commit, rollback, or compensation — the §3.4
  // guarantee per pipelined request), all four responses are dropped, and
  // the database verifies.
  ServerOptions options = SmallServer(/*decomposed=*/true, 1, 8);
  options.cost_scale = 1.0;
  options.workload.compute_seconds = 0.02;
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectLoopback(server.port());
  ASSERT_TRUE(fd.ok());
  std::string batch = ExecFrame(1, tpcc::TxnType::kNewOrder);
  for (uint64_t id = 2; id <= 4; ++id) {
    batch += ExecFrame(id, tpcc::TxnType::kPayment);
  }
  ASSERT_EQ(net::WriteFull(fd->get(), batch.data(), batch.size()),
            net::IoResult::kOk);
  // Let the loop admit all four, then sever the connection while the slow
  // new-order still occupies the single worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fd->Reset();

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  EXPECT_EQ(stats.requests_admitted, 4u);
  EXPECT_EQ(stats.committed + stats.aborted, 4u);
  EXPECT_EQ(stats.responses_sent + stats.responses_dropped, 4u);
  EXPECT_GE(stats.responses_dropped, 3u);  // At most the first could race out.
  ExpectConsistent(server);
}

TEST(NetServerTest, CrossShardDrainConservesCounters) {
  // Three loop shards, six concurrent connections: round-robin spreads two
  // sessions onto every shard. All requests complete, every shard flushes
  // its responses on drain, and the counters conserve across shards.
  ServerOptions options = SmallServer(/*decomposed=*/true, 2, 32);
  options.loop_shards = 3;
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConns = 6;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (int c = 0; c < kConns; ++c) {
    threads.emplace_back([&server, &committed] {
      auto client = net::Client::Connect(server.port());
      ASSERT_TRUE(client.ok());
      for (int i = 0; i < 2; ++i) {
        auto resp = client->Execute(tpcc::TxnType::kPayment, 0,
                                    /*retry_limit=*/8);
        ASSERT_TRUE(resp.ok()) << resp.status().message();
        if (resp->status == net::WireStatus::kOk) ++committed;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kConns));
  EXPECT_EQ(stats.committed, static_cast<uint64_t>(committed.load()));
  EXPECT_EQ(stats.responses_dropped, 0u);
  ExpectConsistent(server);
}

TEST(NetServerTest, MalformedFrameMidPipelineKillsOnlyItsSession) {
  // Two shards. Connection A pipelines a valid request followed by an
  // empty (fatal) frame in the same write: the valid request is admitted,
  // the session dies on the malformed frame, and its in-flight response is
  // dropped. Connection B on the other shard stays healthy throughout.
  ServerOptions options = SmallServer(/*decomposed=*/true, 2, 16);
  options.loop_shards = 2;
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto bad = net::ConnectLoopback(server.port());
  ASSERT_TRUE(bad.ok());
  std::string batch = ExecFrame(1, tpcc::TxnType::kPayment);
  const char zeros[4] = {0, 0, 0, 0};  // Empty frame: protocol-fatal.
  batch.append(zeros, sizeof(zeros));
  ASSERT_EQ(net::WriteFull(bad->get(), batch.data(), batch.size()),
            net::IoResult::kOk);
  char buf[16];
  EXPECT_EQ(net::ReadFull(bad->get(), buf, 1), net::IoResult::kEof);

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Execute(tpcc::TxnType::kPayment, 0, 4);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, net::WireStatus::kOk);

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  EXPECT_EQ(stats.malformed_frames, 1u);
  ExpectStatsConserve(stats);
  // A's admitted request completed; its response was dropped with the
  // session (unless it raced out before the malformed frame decoded —
  // impossible here, both frames arrive in one read batch).
  EXPECT_EQ(stats.requests_admitted, 2u);
  EXPECT_EQ(stats.responses_dropped, 1u);
  ExpectConsistent(server);
}

TEST(NetServerTest, OpenLoopLoadGenAnswersEverything) {
  // A modest open-loop run against a 2-shard server: every scheduled
  // arrival is answered before the drain cutoff and the client and server
  // views agree exactly.
  ServerOptions options = SmallServer(/*decomposed=*/true, 2, 64);
  options.loop_shards = 2;
  AccdbServer server(options);
  ASSERT_TRUE(server.Start().ok());

  net::LoadGenOptions lopts;
  lopts.connections = 8;
  lopts.seconds = 0.3;
  lopts.seed = 11;
  lopts.arrival = net::ArrivalMode::kOpen;
  lopts.open_rate = 200.0;
  lopts.drain_seconds = 10.0;
  auto load = net::RunLoadGen(server.port(), lopts);
  ASSERT_TRUE(load.ok()) << load.status().message();
  EXPECT_GT(load->committed, 0u);
  EXPECT_EQ(load->transport_errors, 0u);
  EXPECT_EQ(load->unanswered, 0u);
  // Open loop never retries: aborts are terminal outcomes.
  EXPECT_EQ(load->retries, 0u);
  EXPECT_EQ(load->queue_hist.count(), load->issued());

  server.Shutdown();
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  EXPECT_EQ(stats.requests_admitted, load->issued());
  EXPECT_EQ(stats.committed, load->committed);
  EXPECT_EQ(stats.responses_dropped, 0u);
  ExpectConsistent(server);
}

TEST(NetServerTest, ShutdownRefusesNewWorkAndDrains) {
  AccdbServer server(SmallServer(/*decomposed=*/true, 2, 16));
  ASSERT_TRUE(server.Start().ok());

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Execute(tpcc::TxnType::kPayment, 0, 4);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, net::WireStatus::kOk);

  server.Shutdown();
  // Idempotent: a second shutdown is a no-op.
  server.Shutdown();

  // New connections are refused (listener closed) or reset.
  auto late = net::Client::Connect(server.port());
  if (late.ok()) {
    auto late_resp = late->Execute(tpcc::TxnType::kPayment, 0, 0);
    EXPECT_FALSE(late_resp.ok());
  }
  ServerStats stats = server.StatsSnapshot();
  ExpectStatsConserve(stats);
  ExpectConsistent(server);
}

}  // namespace
}  // namespace accdb::server
