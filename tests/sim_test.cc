#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace accdb::sim {
namespace {

TEST(SimulationTest, RunsToCompletion) {
  Simulation sim;
  bool ran = false;
  sim.Spawn("p", [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(SimulationTest, DelayAdvancesVirtualTime) {
  Simulation sim;
  Time observed = -1;
  sim.Spawn("p", [&] {
    sim.Delay(2.5);
    observed = sim.Now();
  });
  EXPECT_DOUBLE_EQ(sim.Run(), 2.5);
  EXPECT_DOUBLE_EQ(observed, 2.5);
}

TEST(SimulationTest, EventsInTimeOrder) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("slow", [&] {
    sim.Delay(3.0);
    order.push_back("slow");
  });
  sim.Spawn("fast", [&] {
    sim.Delay(1.0);
    order.push_back("fast");
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"fast", "slow"}));
}

TEST(SimulationTest, SameTimeFifoBySchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn("p", [&, i] {
      sim.Delay(1.0);
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, InterleavedDelays) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("a", [&] {
    order.push_back("a0");
    sim.Delay(1.0);
    order.push_back("a1");
    sim.Delay(2.0);  // Finishes at 3.
    order.push_back("a3");
  });
  sim.Spawn("b", [&] {
    order.push_back("b0");
    sim.Delay(2.0);
    order.push_back("b2");
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b2", "a3"}));
}

TEST(SimulationTest, SignalWakesWaiter) {
  Simulation sim;
  Signal signal(sim);
  std::vector<std::string> order;
  sim.Spawn("waiter", [&] {
    sim.WaitSignal(signal);
    order.push_back("woken@" + std::to_string(sim.Now()));
  });
  sim.Spawn("notifier", [&] {
    sim.Delay(5.0);
    signal.Notify();
    order.push_back("notified");
  });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  // The notifier continues first (the waiter is scheduled, not run inline).
  EXPECT_EQ(order[0], "notified");
  EXPECT_EQ(order[1], "woken@5.000000");
}

TEST(SimulationTest, NotifyWakesAllWaitersFifo) {
  Simulation sim;
  Signal signal(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn("w", [&, i] {
      sim.WaitSignal(signal);
      order.push_back(i);
    });
  }
  sim.Spawn("n", [&] {
    sim.Delay(1.0);
    signal.Notify();
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulationTest, BlockedProcessAbandonedAtTeardown) {
  // A process waiting on a signal nobody fires must not hang destruction.
  Simulation sim;
  Signal signal(sim);
  bool after_wait = false;
  sim.Spawn("stuck", [&] {
    sim.WaitSignal(signal);
    after_wait = true;  // Unreached: teardown unwinds the stack.
  });
  sim.Run();
  EXPECT_FALSE(after_wait);
  EXPECT_EQ(sim.live_processes(), 1);
  // Destructor joins the stuck process.
}

TEST(SimulationTest, SpawnFromWithinProcess) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("parent", [&] {
    sim.Delay(1.0);
    sim.Spawn("child", [&] {
      order.push_back("child@" + std::to_string(sim.Now()));
    });
    order.push_back("parent");
  });
  sim.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"parent", "child@1.000000"}));
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim;
    Signal signal(sim);
    std::vector<double> stamps;
    for (int i = 0; i < 4; ++i) {
      sim.Spawn("w", [&sim, &signal, &stamps, i] {
        sim.Delay(0.5 * i);
        sim.WaitSignal(signal);
        stamps.push_back(sim.Now() + i);
      });
    }
    sim.Spawn("n", [&sim, &signal] {
      for (int k = 0; k < 4; ++k) {
        sim.Delay(1.0);
        signal.Notify();
      }
    });
    sim.Run();
    return stamps;
  };
  EXPECT_EQ(run(), run());
}

// --- Resource ---

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Simulation sim;
  Resource servers(sim, 2);
  std::vector<double> finish;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn("job", [&] {
      ResourceGuard guard(servers);
      sim.Delay(1.0);
      finish.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(finish.size(), 4u);
  // Two at t=1, two at t=2.
  EXPECT_DOUBLE_EQ(finish[0], 1.0);
  EXPECT_DOUBLE_EQ(finish[1], 1.0);
  EXPECT_DOUBLE_EQ(finish[2], 2.0);
  EXPECT_DOUBLE_EQ(finish[3], 2.0);
}

TEST(ResourceTest, FifoHandoff) {
  Simulation sim;
  Resource server(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn("job", [&, i] {
      sim.Delay(0.1 * i);  // Arrive in order 0, 1, 2.
      ResourceGuard guard(server);
      sim.Delay(1.0);
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, ReleaseWithEmptyQueueRestoresCapacity) {
  Simulation sim;
  Resource server(sim, 1);
  sim.Spawn("job", [&] {
    server.Acquire();
    server.Release();
    EXPECT_EQ(server.available(), 1);
    server.Acquire();
    EXPECT_EQ(server.available(), 0);
    server.Release();
  });
  sim.Run();
}

// --- Accumulator ---

TEST(AccumulatorTest, BasicStats) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(AccumulatorTest, Merge) {
  Accumulator a, b;
  a.Add(1.0);
  b.Add(3.0);
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(AccumulatorTest, EmptyMinMaxAreNaN) {
  // An empty accumulator must not report 0.0 as a measurement (it would
  // render as a real value in tables and JSON).
  Accumulator acc;
  EXPECT_TRUE(std::isnan(acc.min()));
  EXPECT_TRUE(std::isnan(acc.max()));
  EXPECT_EQ(acc.ToString(), "n=0 mean=- min=- max=-");
}

TEST(AccumulatorTest, MergeEmptyDoesNotInjectSentinels) {
  Accumulator a;
  a.Add(2.0);
  a.Add(4.0);
  Accumulator empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);

  // Merging into an empty accumulator adopts the other side's extrema, and
  // empty-into-empty stays empty (no ±infinity leaks into output).
  Accumulator b;
  b.Merge(a);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);
  Accumulator c, d;
  c.Merge(d);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_TRUE(std::isnan(c.min()));
  EXPECT_TRUE(std::isnan(c.max()));
}

// --- Histogram ---

TEST(HistogramTest, EmptyReportsNaN) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.p50()));
  EXPECT_TRUE(std::isnan(h.p99()));
  EXPECT_EQ(h.ToString(), "n=0 p50=- p95=- p99=- max=-");
}

TEST(HistogramTest, BucketIndexCoversFullRange) {
  // Underflow: zero, negatives, NaN, and anything below the tracked floor.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1e-9), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  // The tracked floor opens the first tracked bucket.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMinTracked), 1);
  // Overflow.
  EXPECT_EQ(Histogram::BucketIndex(Histogram::kMaxTracked),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kNumBuckets - 1);
  // Every value lands in a bucket whose [lo, hi) interval contains it.
  for (double v : {1e-4, 3.7e-4, 0.01, 0.5, 1.0, 42.0, 999.0}) {
    int bucket = Histogram::BucketIndex(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(bucket)) << v;
    EXPECT_LT(v, Histogram::BucketUpperBound(bucket)) << v;
  }
}

TEST(HistogramTest, PercentilesMonotoneAndClamped) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i * 0.001);  // 1 ms .. 1 s.
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 0.001);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  double p50 = h.p50(), p90 = h.p90(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
  // Log-scale buckets are ~15% wide: the readout must bracket the exact
  // percentile from above within one bucket ratio.
  EXPECT_GE(p50, 0.5);
  EXPECT_LE(p50, 0.5 * 1.16);
  EXPECT_GE(p99, 0.99);
}

TEST(HistogramTest, SingleValueAllPercentilesEqual) {
  Histogram h;
  h.Add(0.25);
  // Percentiles clamp to the exact observed extrema.
  EXPECT_DOUBLE_EQ(h.p50(), 0.25);
  EXPECT_DOUBLE_EQ(h.p99(), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.25);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.25);
}

TEST(HistogramTest, OutOfRangeSamplesClampToObservedExtrema) {
  Histogram h;
  h.Add(1e-9);  // Underflow bucket.
  h.Add(1e9);   // Overflow bucket.
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_GE(h.p50(), h.min());
  EXPECT_LE(h.p50(), h.max());
  EXPECT_DOUBLE_EQ(h.p99(), 1e9);
}

TEST(HistogramTest, MergeMatchesConcatenatedStream) {
  Histogram left, right, all;
  for (int i = 0; i < 500; ++i) {
    double v = 0.0001 * (i + 1);
    left.Add(v);
    all.Add(v);
  }
  for (int i = 0; i < 300; ++i) {
    double v = 0.05 * (i + 1);
    right.Add(v);
    all.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.sum(), all.sum());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  // Same buckets => identical percentile readouts, not merely approximate.
  EXPECT_DOUBLE_EQ(left.p50(), all.p50());
  EXPECT_DOUBLE_EQ(left.p95(), all.p95());
  EXPECT_DOUBLE_EQ(left.p99(), all.p99());
  // Merging an empty histogram is a no-op.
  Histogram empty;
  double before = left.p95();
  left.Merge(empty);
  EXPECT_DOUBLE_EQ(left.p95(), before);
}

TEST(HistogramTest, DeterministicAcrossInsertionOrder) {
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(0.003 * (i % 37 + 1));
  Histogram forward, backward;
  for (double v : values) forward.Add(v);
  std::reverse(values.begin(), values.end());
  for (double v : values) backward.Add(v);
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(forward.bucket_count(i), backward.bucket_count(i)) << i;
  }
  EXPECT_EQ(forward.ToString(), backward.ToString());
}

TEST(HistogramTest, BucketCountsSumToCount) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(0.00005 * (i + 1));
  uint64_t total = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    total += h.bucket_count(i);
  }
  EXPECT_EQ(total, h.count());
}

}  // namespace
}  // namespace accdb::sim
