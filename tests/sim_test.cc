#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/metrics.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace accdb::sim {
namespace {

TEST(SimulationTest, RunsToCompletion) {
  Simulation sim;
  bool ran = false;
  sim.Spawn("p", [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.live_processes(), 0);
}

TEST(SimulationTest, DelayAdvancesVirtualTime) {
  Simulation sim;
  Time observed = -1;
  sim.Spawn("p", [&] {
    sim.Delay(2.5);
    observed = sim.Now();
  });
  EXPECT_DOUBLE_EQ(sim.Run(), 2.5);
  EXPECT_DOUBLE_EQ(observed, 2.5);
}

TEST(SimulationTest, EventsInTimeOrder) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("slow", [&] {
    sim.Delay(3.0);
    order.push_back("slow");
  });
  sim.Spawn("fast", [&] {
    sim.Delay(1.0);
    order.push_back("fast");
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"fast", "slow"}));
}

TEST(SimulationTest, SameTimeFifoBySchedulingOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn("p", [&, i] {
      sim.Delay(1.0);
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, InterleavedDelays) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("a", [&] {
    order.push_back("a0");
    sim.Delay(1.0);
    order.push_back("a1");
    sim.Delay(2.0);  // Finishes at 3.
    order.push_back("a3");
  });
  sim.Spawn("b", [&] {
    order.push_back("b0");
    sim.Delay(2.0);
    order.push_back("b2");
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1", "b2", "a3"}));
}

TEST(SimulationTest, SignalWakesWaiter) {
  Simulation sim;
  Signal signal(sim);
  std::vector<std::string> order;
  sim.Spawn("waiter", [&] {
    sim.WaitSignal(signal);
    order.push_back("woken@" + std::to_string(sim.Now()));
  });
  sim.Spawn("notifier", [&] {
    sim.Delay(5.0);
    signal.Notify();
    order.push_back("notified");
  });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  // The notifier continues first (the waiter is scheduled, not run inline).
  EXPECT_EQ(order[0], "notified");
  EXPECT_EQ(order[1], "woken@5.000000");
}

TEST(SimulationTest, NotifyWakesAllWaitersFifo) {
  Simulation sim;
  Signal signal(sim);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn("w", [&, i] {
      sim.WaitSignal(signal);
      order.push_back(i);
    });
  }
  sim.Spawn("n", [&] {
    sim.Delay(1.0);
    signal.Notify();
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulationTest, BlockedProcessAbandonedAtTeardown) {
  // A process waiting on a signal nobody fires must not hang destruction.
  Simulation sim;
  Signal signal(sim);
  bool after_wait = false;
  sim.Spawn("stuck", [&] {
    sim.WaitSignal(signal);
    after_wait = true;  // Unreached: teardown unwinds the stack.
  });
  sim.Run();
  EXPECT_FALSE(after_wait);
  EXPECT_EQ(sim.live_processes(), 1);
  // Destructor joins the stuck process.
}

TEST(SimulationTest, SpawnFromWithinProcess) {
  Simulation sim;
  std::vector<std::string> order;
  sim.Spawn("parent", [&] {
    sim.Delay(1.0);
    sim.Spawn("child", [&] {
      order.push_back("child@" + std::to_string(sim.Now()));
    });
    order.push_back("parent");
  });
  sim.Run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"parent", "child@1.000000"}));
}

TEST(SimulationTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulation sim;
    Signal signal(sim);
    std::vector<double> stamps;
    for (int i = 0; i < 4; ++i) {
      sim.Spawn("w", [&sim, &signal, &stamps, i] {
        sim.Delay(0.5 * i);
        sim.WaitSignal(signal);
        stamps.push_back(sim.Now() + i);
      });
    }
    sim.Spawn("n", [&sim, &signal] {
      for (int k = 0; k < 4; ++k) {
        sim.Delay(1.0);
        signal.Notify();
      }
    });
    sim.Run();
    return stamps;
  };
  EXPECT_EQ(run(), run());
}

// --- Resource ---

TEST(ResourceTest, CapacityLimitsConcurrency) {
  Simulation sim;
  Resource servers(sim, 2);
  std::vector<double> finish;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn("job", [&] {
      ResourceGuard guard(servers);
      sim.Delay(1.0);
      finish.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(finish.size(), 4u);
  // Two at t=1, two at t=2.
  EXPECT_DOUBLE_EQ(finish[0], 1.0);
  EXPECT_DOUBLE_EQ(finish[1], 1.0);
  EXPECT_DOUBLE_EQ(finish[2], 2.0);
  EXPECT_DOUBLE_EQ(finish[3], 2.0);
}

TEST(ResourceTest, FifoHandoff) {
  Simulation sim;
  Resource server(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn("job", [&, i] {
      sim.Delay(0.1 * i);  // Arrive in order 0, 1, 2.
      ResourceGuard guard(server);
      sim.Delay(1.0);
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, ReleaseWithEmptyQueueRestoresCapacity) {
  Simulation sim;
  Resource server(sim, 1);
  sim.Spawn("job", [&] {
    server.Acquire();
    server.Release();
    EXPECT_EQ(server.available(), 1);
    server.Acquire();
    EXPECT_EQ(server.available(), 0);
    server.Release();
  });
  sim.Run();
}

// --- Accumulator ---

TEST(AccumulatorTest, BasicStats) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  acc.Add(2.0);
  acc.Add(4.0);
  acc.Add(6.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 6.0);
}

TEST(AccumulatorTest, Merge) {
  Accumulator a, b;
  a.Add(1.0);
  b.Add(3.0);
  b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

}  // namespace
}  // namespace accdb::sim
