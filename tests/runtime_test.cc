// Real-thread runtime tests: the ThreadExecutionEnv wait protocol under
// actual threads, and the closed-loop multi-threaded TPC-C runner end to
// end in both execution modes (ACC and strict 2PL). These are the tests the
// tsan_smoke target runs under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>

#include "acc/catalog.h"
#include "acc/conflict_resolver.h"
#include "acc/function_program.h"
#include "acc/interference.h"
#include "acc/txn_context.h"
#include "runtime/rt_runner.h"
#include "runtime/thread_env.h"
#include "storage/database.h"

namespace accdb::runtime {
namespace {

TEST(ThreadExecutionEnvTest, GrantWakesWaiter) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  std::atomic<bool> granted{false};
  env.PrepareWait(7);
  std::thread waiter([&] { granted = env.AwaitLock(7); });
  env.LockGranted(7);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(ThreadExecutionEnvTest, AbortWakesWaiterAsLoser) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  std::atomic<bool> granted{true};
  env.PrepareWait(9);
  std::thread waiter([&] { granted = env.AwaitLock(9); });
  env.LockAborted(9);
  waiter.join();
  EXPECT_FALSE(granted.load());
}

TEST(ThreadExecutionEnvTest, GrantBeforeAwaitIsNotLost) {
  // PrepareWait arms the cell before the request is issued, so a grant
  // arriving before AwaitLock must resolve the wait instantly.
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(3);
  env.LockGranted(3);
  EXPECT_TRUE(env.AwaitLock(3));
}

TEST(ThreadExecutionEnvTest, StaleNotificationsAreDropped) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.LockGranted(42);  // Not armed: ignored.
  env.PrepareWait(5);
  env.LockGranted(11);  // Armed for a different txn: ignored.
  env.DiscardWait(5);
  env.LockAborted(5);  // Disarmed: ignored.
  env.PrepareWait(6);
  env.LockGranted(6);
  EXPECT_TRUE(env.AwaitLock(6));
}

TEST(ThreadExecutionEnvTest, AwaitLockUntilTimesOut) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(4);
  const double start = env.Now();
  acc::WaitVerdict verdict = env.AwaitLockUntil(4, env.Now() + 0.05);
  EXPECT_EQ(verdict, acc::WaitVerdict::kTimedOut);
  EXPECT_GE(env.Now() - start, 0.045);
  // The cell stays armed after a timeout, so a racing grant is absorbed
  // rather than hitting a disarmed cell; the caller then discards it.
  env.LockGranted(4);
  env.DiscardWait(4);
}

TEST(ThreadExecutionEnvTest, AwaitLockUntilGrantBeatsDeadline) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(8);
  std::thread granter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    env.LockGranted(8);
  });
  EXPECT_EQ(env.AwaitLockUntil(8, env.Now() + 5.0),
            acc::WaitVerdict::kGranted);
  granter.join();
}

TEST(ThreadExecutionEnvTest, AwaitLockUntilAbortBeatsDeadline) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(8);
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    env.LockAborted(8);
  });
  EXPECT_EQ(env.AwaitLockUntil(8, env.Now() + 5.0),
            acc::WaitVerdict::kAborted);
  aborter.join();
}

TEST(ThreadExecutionEnvTest, AwaitLockUntilInfiniteDelegates) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(3);
  env.LockGranted(3);
  EXPECT_EQ(env.AwaitLockUntil(
                3, std::numeric_limits<double>::infinity()),
            acc::WaitVerdict::kGranted);
}

TEST(ThreadExecutionEnvTest, ReusableAfterTimeout) {
  ThreadExecutionEnv env(/*time_scale=*/0);
  env.PrepareWait(1);
  EXPECT_EQ(env.AwaitLockUntil(1, env.Now() + 0.01),
            acc::WaitVerdict::kTimedOut);
  env.DiscardWait(1);
  // The cell re-arms cleanly for the next transaction.
  env.PrepareWait(2);
  env.LockGranted(2);
  EXPECT_TRUE(env.AwaitLock(2));
}

TEST(ThreadExecutionEnvTest, ClockIsMonotonic) {
  ThreadExecutionEnv env(/*time_scale=*/1.0);
  double a = env.Now();
  env.ClientDelay(0.01);
  double b = env.Now();
  EXPECT_GE(b - a, 0.009);
}

// A lock wait that outlives the env's per-request deadline must surface as
// the typed kDeadlineExceeded status (serving-layer path), release
// everything the transaction held, and leave the engine healthy for
// subsequent executions.
TEST(ThreadEnvEngineTest, LockWaitDeadlineSurfacesAsTypedStatus) {
  storage::Database db;
  storage::Table* counter = db.CreateVariable("c", 0);
  acc::Catalog catalog;
  acc::InterferenceTable table;
  acc::AccConflictResolver resolver(&table);
  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  acc::Engine engine(&db, &resolver, config);
  const lock::ActorId step = catalog.RegisterStepType("w");

  std::atomic<bool> holder_has_lock{false};
  std::atomic<bool> release{false};

  auto increment = [&](acc::TxnContext& c) -> Status {
    ACCDB_ASSIGN_OR_RETURN(int64_t v, c.ReadVariable(*counter, true));
    return c.WriteVariable(*counter, v + 1);
  };

  std::thread holder([&] {
    ThreadExecutionEnv env(/*time_scale=*/0);
    acc::FunctionProgram prog("holder", [&](acc::TxnContext& ctx) {
      return ctx.RunStep(step, {1}, acc::AssertionInstance{},
                         [&](acc::TxnContext& c) -> Status {
                           ACCDB_RETURN_IF_ERROR(increment(c));
                           holder_has_lock.store(true);
                           while (!release.load()) {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(1));
                           }
                           return Status::Ok();
                         });
    });
    acc::ExecResult result =
        engine.Execute(prog, env, acc::ExecMode::kSerializable);
    EXPECT_TRUE(result.status.ok());
  });
  while (!holder_has_lock.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ThreadExecutionEnv env(/*time_scale=*/0);
  acc::FunctionProgram prog("waiter", [&](acc::TxnContext& ctx) {
    return ctx.RunStep(step, {1}, acc::AssertionInstance{}, increment);
  });
  env.set_lock_wait_deadline(env.Now() + 0.05);
  acc::ExecResult result =
      engine.Execute(prog, env, acc::ExecMode::kSerializable);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded)
      << result.status.message();
  release.store(true);
  holder.join();

  // The timed-out waiter holds nothing; an unbounded rerun succeeds.
  env.clear_lock_wait_deadline();
  result = engine.Execute(prog, env, acc::ExecMode::kSerializable);
  EXPECT_TRUE(result.status.ok()) << result.status.message();
  EXPECT_EQ(db.ReadVariable(*counter), 2);
}

RtConfig SmallConfig(bool decomposed) {
  RtConfig config;
  config.workload.mode = decomposed ? acc::ExecMode::kAccDecomposed
                                   : acc::ExecMode::kSerializable;
  config.workload.terminals = 8;
  config.workload.seed = 20250806;
  config.workload.inputs.skew_districts = true;
  config.workload.inputs.hot_districts = 1;
  config.workload.inputs.hot_fraction = 0.5;
  config.seconds = 0.6;
  // No warmup: metrics cover the whole run, so the lock-manager counters
  // are exactly conserved and checkable below.
  config.warmup_seconds = 0;
  config.cost_scale = 0.05;  // Shrink modeled statement sleeps ~20x.
  config.think_scale = 0;    // Saturated closed loop.
  return config;
}

void CheckStatsConservation(const lock::LockManager::Stats& stats) {
  // Every request resolves as an immediate grant, a wait, or a deadlock
  // abort (the compensation-priority path can consume a request without
  // bumping grant/wait, hence the inequalities).
  EXPECT_GE(stats.requests, stats.immediate_grants + stats.waits);
  EXPECT_LE(stats.requests,
            stats.immediate_grants + stats.waits +
                stats.deadlock_victim_aborts +
                stats.compensation_priority_aborts);
}

TEST(RtRunnerTest, AccModeRunsToCompletion) {
  tpcc::WorkloadResult result = RunRtWorkload(SmallConfig(true));
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_GT(result.sim_seconds, 0.0);
  EXPECT_EQ(result.response_all.count(),
            result.completed + result.aborted);
  CheckStatsConservation(result.lock_stats);
}

TEST(RtRunnerTest, SerializableModeRunsToCompletion) {
  tpcc::WorkloadResult result = RunRtWorkload(SmallConfig(false));
  EXPECT_GT(result.completed, 0u);
  EXPECT_TRUE(result.consistent) << result.first_violation;
  EXPECT_EQ(result.compensated, 0u);  // 2PL never compensates.
  CheckStatsConservation(result.lock_stats);
}

TEST(RtRunnerTest, WarmupResetsMetrics) {
  RtConfig config = SmallConfig(true);
  config.seconds = 0.4;
  config.warmup_seconds = 0.2;
  tpcc::WorkloadResult result = RunRtWorkload(config);
  // The measured window excludes warmup; throughput uses the window only.
  EXPECT_LT(result.sim_seconds, 0.55);
  EXPECT_TRUE(result.consistent) << result.first_violation;
}

}  // namespace
}  // namespace accdb::runtime
