// Negative tests for the TPC-C consistency checker: each condition must
// actually detect the corruption it claims to detect (a checker that never
// fires proves nothing about the runs it blesses).

#include <gtest/gtest.h>

#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/loader.h"
#include "tpcc/tpcc_db.h"

namespace accdb::tpcc {
namespace {

using storage::Key;
using storage::Value;

class ConsistencyCheckerTest : public ::testing::Test {
 protected:
  ConsistencyCheckerTest() : db_(&database_) {
    LoadDatabase(db_, ScaleConfig::Test(), /*seed=*/9);
  }

  // True iff some violation message contains `needle`.
  bool Violates(std::string_view needle, bool strict = true) {
    ConsistencyReport report = CheckConsistency(db_, strict);
    for (const std::string& v : report.violations) {
      if (v.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  storage::Database database_;
  TpccDb db_;
};

TEST_F(ConsistencyCheckerTest, CleanDatabasePasses) {
  ConsistencyReport report = CheckConsistency(db_, /*strict=*/true);
  EXPECT_TRUE(report.ok) << (report.violations.empty()
                                 ? ""
                                 : report.violations[0]);
}

TEST_F(ConsistencyCheckerTest, C1DetectsWarehouseYtdDrift) {
  auto id = *db_.warehouse->LookupPk(Key(int64_t{1}));
  ASSERT_TRUE(db_.warehouse
                  ->UpdateColumns(id, {{db_.w_ytd,
                                        Value(Money::FromDollars(1))}})
                  .ok());
  EXPECT_TRUE(Violates("C1"));
}

TEST_F(ConsistencyCheckerTest, C2DetectsCounterBehindOrders) {
  auto id = *db_.district->LookupPk(Key(int64_t{1}, int64_t{1}));
  ASSERT_TRUE(db_.district
                  ->UpdateColumns(id, {{db_.d_next_o_id, Value(int64_t{2})}})
                  .ok());
  EXPECT_TRUE(Violates("C2", /*strict=*/false));  // Even non-strict.
}

TEST_F(ConsistencyCheckerTest, C3DetectsNewOrderGapStrict) {
  // Insert NEW-ORDER rows 100 and 102 (gap at 101) for orders that exist.
  ASSERT_TRUE(db_.new_order->Insert({Value(int64_t{1}), Value(int64_t{1}),
                                     Value(int64_t{3})})
                  .ok());
  ASSERT_TRUE(db_.new_order->Insert({Value(int64_t{1}), Value(int64_t{1}),
                                     Value(int64_t{5})})
                  .ok());
  // (This also breaks C5 — carrier set but NEW-ORDER present — and that is
  // fine; we only assert C3 fires under strict mode.)
  EXPECT_TRUE(Violates("C3", /*strict=*/true));
  EXPECT_FALSE(Violates("C3", /*strict=*/false));  // Gaps allowed non-strict.
}

TEST_F(ConsistencyCheckerTest, C4DetectsLineCountDrift) {
  auto lines = db_.order_line->ScanPkPrefix(Key(int64_t{1}, int64_t{1},
                                                int64_t{1}));
  ASSERT_FALSE(lines.empty());
  ASSERT_TRUE(db_.order_line->Delete(lines.back()).ok());
  EXPECT_TRUE(Violates("C4"));
  EXPECT_TRUE(Violates("C6"));  // Per-order count breaks too.
}

TEST_F(ConsistencyCheckerTest, C5DetectsCarrierNewOrderMismatch) {
  // A delivered order (carrier set) must have no NEW-ORDER row.
  ASSERT_TRUE(db_.new_order->Insert({Value(int64_t{1}), Value(int64_t{2}),
                                     Value(int64_t{4})})
                  .ok());
  EXPECT_TRUE(Violates("C5", /*strict=*/false));
}

TEST_F(ConsistencyCheckerTest, C7DetectsUnstampedDeliveredLine) {
  auto lines = db_.order_line->ScanPkPrefix(Key(int64_t{1}, int64_t{1},
                                                int64_t{2}));
  ASSERT_FALSE(lines.empty());
  ASSERT_TRUE(db_.order_line
                  ->UpdateColumns(lines[0], {{db_.ol_delivery_d,
                                              Value(int64_t{0})}})
                  .ok());
  EXPECT_TRUE(Violates("C7"));
}

TEST_F(ConsistencyCheckerTest, C9DetectsDistrictYtdDrift) {
  auto id = *db_.district->LookupPk(Key(int64_t{1}, int64_t{4}));
  ASSERT_TRUE(db_.district
                  ->UpdateColumns(id, {{db_.d_ytd,
                                        Value(Money::FromDollars(1))}})
                  .ok());
  EXPECT_TRUE(Violates("C9"));
  EXPECT_TRUE(Violates("C1"));  // The warehouse sum no longer matches.
}

TEST_F(ConsistencyCheckerTest, C10DetectsBalanceDrift) {
  auto id = *db_.customer->LookupPk(Key(int64_t{1}, int64_t{1}, int64_t{1}));
  ASSERT_TRUE(db_.customer
                  ->UpdateColumns(id, {{db_.c_balance,
                                        Value(Money::FromDollars(123))}})
                  .ok());
  EXPECT_TRUE(Violates("C10"));
  EXPECT_TRUE(Violates("C12"));
}

TEST_F(ConsistencyCheckerTest, C11DetectsOrderCountDrift) {
  // Delete an order (with its lines) without fixing the district counter.
  auto order_id = *db_.orders->LookupPk(Key(int64_t{1}, int64_t{3},
                                            int64_t{1}));
  for (storage::RowId line :
       db_.order_line->ScanPkPrefix(Key(int64_t{1}, int64_t{3}, int64_t{1}))) {
    ASSERT_TRUE(db_.order_line->Delete(line).ok());
  }
  ASSERT_TRUE(db_.orders->Delete(order_id).ok());
  EXPECT_TRUE(Violates("C11", /*strict=*/true));
}

}  // namespace
}  // namespace accdb::tpcc
