// Smoke test for the benchmark pipeline (registered as the `bench_smoke`
// CTest target): pushes a tiny sweep — 2 terminal counts, ~2 simulated
// seconds — through the parallel runner, writes the BENCH_*.json report,
// re-parses it and validates the schema documented in bench/harness.h.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/json.h"
#include "tpcc/driver.h"

namespace accdb::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void ExpectWorkloadObject(const Json& run) {
  for (const char* key :
       {"completed", "aborted", "compensated", "step_deadlock_retries",
        "txn_restarts", "response_mean", "throughput", "total_lock_wait",
        "sim_seconds", "consistent", "lock_stats"}) {
    EXPECT_TRUE(run.Has(key)) << "missing workload key: " << key;
  }
  const Json* lock_stats = run.Find("lock_stats");
  ASSERT_NE(lock_stats, nullptr);
  for (const char* key :
       {"requests", "immediate_grants", "waits", "deadlocks",
        "compensation_priority_aborts", "unconditional_grants", "upgrades",
        "release_calls"}) {
    EXPECT_TRUE(lock_stats->Has(key)) << "missing lock_stats key: " << key;
  }
  // A 2-simulated-second run still issues lock requests.
  EXPECT_GT(lock_stats->Find("requests")->AsUint(), 0u);
  EXPECT_TRUE(run.Find("consistent")->AsBool());
}

TEST(BenchSmokeTest, TinySweepEmitsValidReport) {
  const std::string path = "BENCH_smoke_selftest.json";
  std::remove(path.c_str());

  BenchOptions options;
  options.name = "smoke_selftest";
  options.jobs = 2;
  options.json_path = path;
  BenchReport report(options);

  tpcc::WorkloadConfig config = BaseConfig(/*seed=*/7);
  config.sim_seconds = 2;
  const std::vector<int> terminals = {2, 4};
  std::vector<std::vector<PairResult>> grid =
      RunPairGrid(options.jobs, {config}, terminals);
  ASSERT_EQ(grid.size(), 1u);
  ASSERT_EQ(grid[0].size(), terminals.size());

  report.AddPairSweep("smoke", "terminals", grid[0]);
  ASSERT_TRUE(report.Write());

  std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  std::string error;
  std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  EXPECT_EQ(doc->Find("bench")->AsString(), "smoke_selftest");
  EXPECT_EQ(doc->Find("jobs")->AsInt(), 2);
  EXPECT_GE(doc->Find("wall_seconds")->AsDouble(), 0.0);

  const Json* sweeps = doc->Find("sweeps");
  ASSERT_NE(sweeps, nullptr);
  ASSERT_EQ(sweeps->size(), 1u);
  const Json& sweep = sweeps->at(0);
  EXPECT_EQ(sweep.Find("label")->AsString(), "smoke");
  EXPECT_EQ(sweep.Find("x_axis")->AsString(), "terminals");

  const Json* points = sweep.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), terminals.size());
  for (size_t i = 0; i < points->size(); ++i) {
    const Json& point = points->at(i);
    EXPECT_EQ(point.Find("x")->AsInt(), terminals[i]);
    EXPECT_TRUE(point.Has("response_ratio"));
    EXPECT_TRUE(point.Has("throughput_ratio"));
    EXPECT_TRUE(point.Has("degenerate"));
    const Json* acc = point.Find("acc");
    const Json* non_acc = point.Find("non_acc");
    ASSERT_NE(acc, nullptr);
    ASSERT_NE(non_acc, nullptr);
    ExpectWorkloadObject(*acc);
    ExpectWorkloadObject(*non_acc);
  }

  std::remove(path.c_str());
}

}  // namespace
}  // namespace accdb::bench
