// Smoke test for the benchmark pipeline (registered as the `bench_smoke`
// CTest target): pushes a tiny sweep — 2 terminal counts, ~2 simulated
// seconds — through the parallel runner, writes the BENCH_*.json report,
// re-parses it and validates the schema documented in bench/harness.h.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/json.h"
#include "tpcc/driver.h"

namespace accdb::bench {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Percentile fields may be null (empty histogram) or a finite double; when
// present they must be non-negative.
double PercentileOrNan(const Json& obj, const char* key) {
  const Json* value = obj.Find(key);
  EXPECT_NE(value, nullptr) << "missing percentile key: " << key;
  if (value == nullptr || value->is_null()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value->AsDouble();
}

void ExpectHistogramObject(const Json& hist, const char* name) {
  SCOPED_TRACE(name);
  for (const char* key : {"count", "sum", "mean", "min", "max", "p50", "p90",
                          "p95", "p99", "buckets"}) {
    EXPECT_TRUE(hist.Has(key)) << "missing histogram key: " << key;
  }
  const uint64_t count = hist.Find("count")->AsUint();
  const Json* buckets = hist.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < buckets->size(); ++i) {
    const Json& bucket = buckets->at(i);
    EXPECT_TRUE(bucket.Has("lo"));
    EXPECT_TRUE(bucket.Has("hi"));
    bucket_total += bucket.Find("n")->AsUint();
  }
  EXPECT_EQ(bucket_total, count) << "bucket counts must sum to count";
  if (count == 0) {
    EXPECT_TRUE(hist.Find("p50")->is_null());
    EXPECT_TRUE(hist.Find("min")->is_null());
    return;
  }
  const double p50 = PercentileOrNan(hist, "p50");
  const double p95 = PercentileOrNan(hist, "p95");
  const double p99 = PercentileOrNan(hist, "p99");
  const double max = hist.Find("max")->AsDouble();
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, max);
}

void ExpectMetricsObject(const Json& run) {
  const Json* metrics = run.Find("metrics");
  ASSERT_NE(metrics, nullptr) << "missing metrics object";
  for (const char* name :
       {"response", "step_latency", "txn_latency", "lock_wait"}) {
    const Json* hist = metrics->Find(name);
    ASSERT_NE(hist, nullptr) << "missing metrics histogram: " << name;
    ExpectHistogramObject(*hist, name);
  }
  const Json* by_mode = metrics->Find("lock_wait_by_mode");
  ASSERT_NE(by_mode, nullptr);
  for (const char* wait_class : {"shared", "exclusive", "assert", "comp"}) {
    const Json* entry = by_mode->Find(wait_class);
    ASSERT_NE(entry, nullptr) << "missing wait class: " << wait_class;
    EXPECT_TRUE(entry->Has("blocks"));
    EXPECT_TRUE(entry->Has("wait_seconds"));
  }
  const Json* conflicts = metrics->Find("block_conflicts");
  ASSERT_NE(conflicts, nullptr);
  for (const char* key :
       {"conv_vs_conv", "write_vs_assert", "assert_vs_write", "other"}) {
    EXPECT_TRUE(conflicts->Has(key)) << "missing conflict kind: " << key;
  }
  EXPECT_TRUE(metrics->Has("deadlock_victim_aborts"));
  const Json* queue_depth = metrics->Find("queue_depth");
  ASSERT_NE(queue_depth, nullptr);
  EXPECT_TRUE(queue_depth->Has("depth_sum"));
  EXPECT_TRUE(queue_depth->Has("depth_max"));
  EXPECT_TRUE(queue_depth->Has("depth_mean"));
}

void ExpectWorkloadObject(const Json& run) {
  for (const char* key :
       {"completed", "aborted", "compensated", "step_deadlock_retries",
        "txn_restarts", "response_mean", "response_min", "response_max",
        "throughput", "total_lock_wait", "sim_seconds", "consistent",
        "lock_stats", "metrics"}) {
    EXPECT_TRUE(run.Has(key)) << "missing workload key: " << key;
  }
  const Json* lock_stats = run.Find("lock_stats");
  ASSERT_NE(lock_stats, nullptr);
  for (const char* key :
       {"requests", "immediate_grants", "waits", "deadlocks",
        "deadlock_victim_aborts", "compensation_priority_aborts",
        "unconditional_grants", "upgrades", "release_calls"}) {
    EXPECT_TRUE(lock_stats->Has(key)) << "missing lock_stats key: " << key;
  }
  // A 2-simulated-second run still issues lock requests.
  EXPECT_GT(lock_stats->Find("requests")->AsUint(), 0u);
  EXPECT_TRUE(run.Find("consistent")->AsBool());
  ExpectMetricsObject(run);
}

TEST(BenchSmokeTest, TinySweepEmitsValidReport) {
  const std::string path = "BENCH_smoke_selftest.json";
  std::remove(path.c_str());

  BenchOptions options;
  options.name = "smoke_selftest";
  options.jobs = 2;
  options.json_path = path;
  BenchReport report(options);

  tpcc::WorkloadConfig config = BaseConfig(/*seed=*/7);
  config.sim_seconds = 2;
  const std::vector<int> terminals = {2, 4};
  std::vector<std::vector<PairResult>> grid =
      RunPairGrid(options.jobs, {config}, terminals);
  ASSERT_EQ(grid.size(), 1u);
  ASSERT_EQ(grid[0].size(), terminals.size());

  report.AddPairSweep("smoke", "terminals", grid[0]);
  ASSERT_TRUE(report.Write());

  std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  std::string error;
  std::optional<Json> doc = Json::Parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  EXPECT_EQ(doc->Find("bench")->AsString(), "smoke_selftest");
  EXPECT_EQ(doc->Find("jobs")->AsInt(), 2);
  EXPECT_GE(doc->Find("wall_seconds")->AsDouble(), 0.0);

  const Json* sweeps = doc->Find("sweeps");
  ASSERT_NE(sweeps, nullptr);
  ASSERT_EQ(sweeps->size(), 1u);
  const Json& sweep = sweeps->at(0);
  EXPECT_EQ(sweep.Find("label")->AsString(), "smoke");
  EXPECT_EQ(sweep.Find("x_axis")->AsString(), "terminals");

  const Json* points = sweep.Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->size(), terminals.size());
  for (size_t i = 0; i < points->size(); ++i) {
    const Json& point = points->at(i);
    EXPECT_EQ(point.Find("x")->AsInt(), terminals[i]);
    EXPECT_TRUE(point.Has("response_ratio"));
    EXPECT_TRUE(point.Has("throughput_ratio"));
    EXPECT_TRUE(point.Has("degenerate"));
    const Json* acc = point.Find("acc");
    const Json* non_acc = point.Find("non_acc");
    ASSERT_NE(acc, nullptr);
    ASSERT_NE(non_acc, nullptr);
    ExpectWorkloadObject(*acc);
    ExpectWorkloadObject(*non_acc);
  }

  std::remove(path.c_str());
}

// An untouched WorkloadResult (no samples anywhere) must serialize with
// null — not 0.0 or ±inf — for every empty-distribution field, and the
// nulls must survive a parse round trip.
TEST(BenchSmokeTest, EmptyWorkloadResultEmitsNulls) {
  tpcc::WorkloadResult empty;
  Json json = WorkloadResultJson(empty);
  EXPECT_TRUE(json.Find("response_min")->is_null());
  EXPECT_TRUE(json.Find("response_max")->is_null());
  const Json* metrics = json.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const Json* response = metrics->Find("response");
  ASSERT_NE(response, nullptr);
  EXPECT_EQ(response->Find("count")->AsUint(), 0u);
  for (const char* key : {"mean", "min", "max", "p50", "p90", "p95", "p99"}) {
    EXPECT_TRUE(response->Find(key)->is_null())
        << "empty histogram field not null: " << key;
  }
  EXPECT_EQ(response->Find("buckets")->size(), 0u);

  std::string error;
  std::optional<Json> parsed = Json::Parse(json.Dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->Find("response_min")->is_null());
  EXPECT_TRUE(
      parsed->Find("metrics")->Find("response")->Find("p99")->is_null());
}

// HistogramJson invariants on a populated histogram: buckets sum to count,
// percentile fields match the histogram's own accessors.
TEST(BenchSmokeTest, HistogramJsonMatchesHistogram) {
  sim::Histogram hist;
  for (int i = 1; i <= 500; ++i) hist.Add(i * 0.002);  // 2ms..1s.
  Json json = HistogramJson(hist);
  EXPECT_EQ(json.Find("count")->AsUint(), hist.count());
  EXPECT_DOUBLE_EQ(json.Find("p50")->AsDouble(), hist.p50());
  EXPECT_DOUBLE_EQ(json.Find("p99")->AsDouble(), hist.p99());
  EXPECT_DOUBLE_EQ(json.Find("min")->AsDouble(), hist.min());
  EXPECT_DOUBLE_EQ(json.Find("max")->AsDouble(), hist.max());
  const Json* buckets = json.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  EXPECT_GT(buckets->size(), 0u);
  uint64_t total = 0;
  double prev_hi = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < buckets->size(); ++i) {
    const Json& bucket = buckets->at(i);
    total += bucket.Find("n")->AsUint();
    const double lo = bucket.Find("lo")->AsDouble();
    EXPECT_GE(lo, prev_hi);  // Buckets are emitted in ascending order.
    if (!bucket.Find("hi")->is_null()) {
      const double hi = bucket.Find("hi")->AsDouble();
      EXPECT_GT(hi, lo);
      prev_hi = hi;
    }
  }
  EXPECT_EQ(total, hist.count());
}

}  // namespace
}  // namespace accdb::bench
