#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/undo_log.h"

namespace accdb::storage {
namespace {

class UndoLogTest : public ::testing::Test {
 protected:
  UndoLogTest() : undo_(&db_) {
    Schema schema;
    schema.columns = {{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}};
    schema.key_columns = {0};
    table_ = db_.CreateTable("t", schema);
  }

  RowId MustInsert(int64_t id, int64_t v) {
    auto r = table_->Insert({Value(id), Value(v)});
    EXPECT_TRUE(r.ok());
    return *r;
  }

  int64_t ValueOf(RowId id) { return (*table_->Get(id))[1].AsInt64(); }

  Database db_;
  Table* table_;
  UndoLog undo_;
};

TEST_F(UndoLogTest, UndoInsert) {
  RowId id = MustInsert(1, 10);
  undo_.WillInsert(table_->id(), id);
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(table_->Get(id), nullptr);
  EXPECT_TRUE(undo_.empty());
}

TEST_F(UndoLogTest, UndoUpdate) {
  RowId id = MustInsert(1, 10);
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(99)}}).ok());
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(ValueOf(id), 10);
}

TEST_F(UndoLogTest, UndoDeleteRestoresOriginalRowId) {
  RowId id = MustInsert(1, 10);
  undo_.WillDelete(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->Delete(id).ok());
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(table_->LookupPk(Key(1)), id);
  EXPECT_EQ(ValueOf(id), 10);
}

TEST_F(UndoLogTest, ReverseOrderRestoresChains) {
  RowId id = MustInsert(1, 10);
  // Two consecutive updates; rollback must land on the first before-image.
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(20)}}).ok());
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(30)}}).ok());
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(ValueOf(id), 10);
}

TEST_F(UndoLogTest, SavepointRollsBackSuffixOnly) {
  RowId id = MustInsert(1, 10);
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(20)}}).ok());
  UndoLog::Savepoint sp = undo_.Mark();
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(30)}}).ok());
  ASSERT_TRUE(undo_.RollbackTo(sp).ok());
  EXPECT_EQ(ValueOf(id), 20);
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(ValueOf(id), 10);
}

TEST_F(UndoLogTest, ReleaseDiscardsWithoutUndo) {
  RowId id = MustInsert(1, 10);
  undo_.WillUpdate(table_->id(), id, *table_->Get(id));
  ASSERT_TRUE(table_->UpdateColumns(id, {{1, Value(20)}}).ok());
  undo_.ReleaseAll();
  EXPECT_TRUE(undo_.empty());
  EXPECT_EQ(ValueOf(id), 20);
}

TEST_F(UndoLogTest, MixedSequence) {
  RowId keep = MustInsert(1, 10);
  // Insert a row, update the original, delete the original.
  RowId fresh = MustInsert(2, 20);
  undo_.WillInsert(table_->id(), fresh);
  undo_.WillUpdate(table_->id(), keep, *table_->Get(keep));
  ASSERT_TRUE(table_->UpdateColumns(keep, {{1, Value(11)}}).ok());
  undo_.WillDelete(table_->id(), keep, *table_->Get(keep));
  ASSERT_TRUE(table_->Delete(keep).ok());
  ASSERT_TRUE(undo_.RollbackAll().ok());
  EXPECT_EQ(ValueOf(keep), 10);
  EXPECT_EQ(table_->Get(fresh), nullptr);
  EXPECT_EQ(table_->size(), 1u);
}

}  // namespace
}  // namespace accdb::storage
