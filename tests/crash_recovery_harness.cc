// Crash-recovery integration harness: the real kill -9.
//
//   1. fork/exec accdb_server on an ephemeral port with a WAL, W=2;
//   2. drive the TPC-C mix through real TCP connections (net::RunLoadGen);
//   3. SIGKILL the server mid-benchmark — no drain, no destructor, the WAL
//      file is whatever WaitDurable had forced;
//   4. re-exec the server with --recover-only against the surviving WAL and
//      the same seed/warehouses: it must replay, compensate every in-flight
//      transaction (failed == 0, missing_compensator == 0) and pass the
//      full TPC-C consistency check.
//
// Usage: crash_recovery_harness <path-to-accdb_server>   (plain main, not
// gtest: the interesting assertions are child exit codes).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"

namespace {

struct ChildProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
};

// fork/exec `argv` with stdout on a pipe. argv must be NULL-terminated.
ChildProcess SpawnChild(const std::vector<std::string>& args) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  close(fds[1]);
  ChildProcess child;
  child.pid = pid;
  child.stdout_fd = fds[0];
  return child;
}

// Reads the child's stdout until the port line appears; returns 0 on EOF.
uint16_t AwaitPortLine(int fd) {
  FILE* stream = fdopen(fd, "r");
  char line[512];
  while (fgets(line, sizeof(line), stream) != nullptr) {
    std::fprintf(stderr, "server: %s", line);
    const char* marker = std::strstr(line, "127.0.0.1:");
    if (marker != nullptr) {
      return static_cast<uint16_t>(
          std::atoi(marker + std::strlen("127.0.0.1:")));
    }
  }
  return 0;
}

// Runs `args` to completion, echoing and capturing stdout.
int RunToCompletion(const std::vector<std::string>& args, std::string* out) {
  ChildProcess child = SpawnChild(args);
  FILE* stream = fdopen(child.stdout_fd, "r");
  char line[1024];
  while (fgets(line, sizeof(line), stream) != nullptr) {
    std::fprintf(stderr, "recover: %s", line);
    out->append(line);
  }
  fclose(stream);
  int wstatus = 0;
  waitpid(child.pid, &wstatus, 0);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-accdb_server>\n", argv[0]);
    return 2;
  }
  const std::string server_path = argv[1];
  const std::string wal_path =
      "/tmp/accdb_crash_harness_" + std::to_string(getpid()) + ".wal";
  ::unlink(wal_path.c_str());
  const std::string seed = "4242";
  const std::string warehouses = "2";

  ChildProcess server = SpawnChild(
      {server_path, "--port=0", "--mode=acc", "--workers=4",
       "--seed=" + seed, "--warehouses=" + warehouses,
       "--wal-path=" + wal_path, "--group-commit-us=100"});
  const uint16_t port = AwaitPortLine(server.stdout_fd);
  if (port == 0) {
    std::fprintf(stderr, "FAIL: server never printed its port\n");
    kill(server.pid, SIGKILL);
    return 1;
  }

  // Closed-loop load in the background; the kill lands mid-benchmark.
  accdb::net::LoadGenOptions load;
  load.connections = 4;
  load.seconds = 4.0;
  load.retry_limit = 4;
  load.seed = 99;
  accdb::Result<accdb::net::LoadGenResult> load_result =
      accdb::Status::Internal("load gen never ran");
  std::thread load_thread([&] { load_result = RunLoadGen(port, load); });

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  std::fprintf(stderr, "harness: kill -9 %d\n", server.pid);
  kill(server.pid, SIGKILL);
  int wstatus = 0;
  waitpid(server.pid, &wstatus, 0);
  load_thread.join();

  if (!(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)) {
    std::fprintf(stderr, "FAIL: server did not die from SIGKILL\n");
    return 1;
  }
  if (!load_result.ok() || load_result->committed == 0) {
    std::fprintf(stderr,
                 "FAIL: no load reached the server before the kill (%s)\n",
                 load_result.ok() ? "0 commits"
                                  : load_result.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "harness: %llu commits before the kill\n",
               static_cast<unsigned long long>(load_result->committed));

  // The surviving WAL is all the restarted process gets.
  std::string report;
  const int exit_code = RunToCompletion(
      {server_path, "--recover-only", "--seed=" + seed,
       "--warehouses=" + warehouses, "--wal-path=" + wal_path},
      &report);
  ::unlink(wal_path.c_str());

  bool ok = true;
  if (exit_code != 0) {
    std::fprintf(stderr, "FAIL: --recover-only exited %d\n", exit_code);
    ok = false;
  }
  if (!Contains(report, "\"failed\": 0")) {
    std::fprintf(stderr, "FAIL: recovery reported failed compensations\n");
    ok = false;
  }
  if (!Contains(report, "\"missing_compensator\": 0")) {
    std::fprintf(stderr, "FAIL: recovery reported missing compensators\n");
    ok = false;
  }
  if (!Contains(report, "\"consistent\": true")) {
    std::fprintf(stderr, "FAIL: post-recovery consistency check failed\n");
    ok = false;
  }
  std::fprintf(stderr, ok ? "PASS: clean recovery after kill -9\n"
                          : "FAIL: see above\n");
  return ok ? 0 : 1;
}
