// Pins simulation-mode bit-identity across the real-thread runtime's
// latching changes: the full WorkloadResultJson of a fixed-seed Figure-2
// hot-spot cell, byte for byte, against a golden captured before any latch
// existed. Mutexes, atomics, and the Insert publication hook must not
// change a single value or its order in the single-threaded simulation.
//
// If this test fails, simulation results are no longer reproducible against
// the repo's recorded experiments — do not regenerate the golden without
// understanding exactly which change moved the numbers and documenting it
// in EXPERIMENTS.md.
//
// Regenerating (only after an intentional, understood change): write the
// two JSON dumps below, ACC first, to tests/golden/sim_identity_fig2cell.txt
// as two '\n'-terminated lines.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "bench/harness.h"
#include "tpcc/driver.h"

namespace accdb {
namespace {

tpcc::WorkloadConfig GoldenConfig() {
  tpcc::WorkloadConfig config = bench::BaseConfig(/*seed=*/40250101);
  config.sim_seconds = 5;
  config.terminals = 8;
  config.inputs.skew_districts = true;
  config.inputs.hot_districts = 1;
  config.inputs.hot_fraction = 0.6;
  return config;
}

std::string ReadGolden() {
  std::ifstream in(std::string(ACCDB_GOLDEN_DIR) +
                   "/sim_identity_fig2cell.txt");
  EXPECT_TRUE(in.good()) << "golden file missing";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(SimIdentityTest, Fig2CellMatchesGoldenBitForBit) {
  tpcc::WorkloadConfig config = GoldenConfig();
  config.mode = acc::ExecMode::kAccDecomposed;
  std::string acc = bench::WorkloadResultJson(tpcc::RunWorkload(config)).Dump();
  config.mode = acc::ExecMode::kSerializable;
  std::string non_acc =
      bench::WorkloadResultJson(tpcc::RunWorkload(config)).Dump();

  std::string golden = ReadGolden();
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(golden, acc + "\n" + non_acc + "\n")
      << "simulation output is no longer bit-identical to the recorded "
         "golden";
}

// The same configuration run twice in-process must also agree with itself —
// separates "golden drifted" (environment/config change) from "the
// simulation became nondeterministic" (a real bug).
TEST(SimIdentityTest, RepeatRunsAreBitIdentical) {
  tpcc::WorkloadConfig config = GoldenConfig();
  config.mode = acc::ExecMode::kAccDecomposed;
  std::string a = bench::WorkloadResultJson(tpcc::RunWorkload(config)).Dump();
  std::string b = bench::WorkloadResultJson(tpcc::RunWorkload(config)).Dump();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace accdb
