// Randomized lock-manager stress: many simulated transactions take random
// mixes of conventional, assertional, and compensation locks in random
// orders with random hold patterns. Invariants checked per seed:
//   * the simulation always drains (every deadlock is detected and
//     resolved — no silent wedges),
//   * after the run the lock table is empty,
//   * aborted waiters always correspond to reported deadlocks,
//   * determinism: identical stats for identical seeds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "acc/catalog.h"
#include "acc/conflict_resolver.h"
#include "acc/interference.h"
#include "common/rng.h"
#include "lock/lock_manager.h"
#include "sim/simulation.h"

namespace accdb::lock {
namespace {

struct StressResult {
  uint64_t completed = 0;
  uint64_t victim_aborts = 0;
  LockManager::Stats stats;
};

// A minimal blocking shim: each simulated worker owns a wait cell; the
// listener resolves it.
class StressHarness : public LockManager::Listener {
 public:
  StressHarness(sim::Simulation& sim, LockManager& lm) : sim_(sim), lm_(lm) {
    lm_.set_listener(this);
  }

  // Returns true if granted, false if this txn lost a deadlock.
  bool AcquireBlocking(TxnId txn, ItemId item, LockMode mode,
                       RequestContext ctx) {
    cells_[txn] = Cell{std::make_unique<sim::Signal>(sim_), false, false};
    Outcome outcome = lm_.Request(txn, item, mode, std::move(ctx));
    if (outcome == Outcome::kGranted) {
      cells_.erase(txn);
      return true;
    }
    if (outcome == Outcome::kAborted) {
      cells_.erase(txn);
      return false;
    }
    Cell& cell = cells_[txn];
    while (!cell.resolved) sim_.WaitSignal(*cell.signal);
    bool granted = cell.granted;
    cells_.erase(txn);
    return granted;
  }

  void OnGranted(TxnId txn) override { Resolve(txn, true); }
  void OnWaiterAborted(TxnId txn) override { Resolve(txn, false); }

 private:
  struct Cell {
    std::unique_ptr<sim::Signal> signal;
    bool resolved = false;
    bool granted = false;
  };

  void Resolve(TxnId txn, bool granted) {
    auto it = cells_.find(txn);
    if (it == cells_.end()) return;
    it->second.resolved = true;
    it->second.granted = granted;
    it->second.signal->Notify();
  }

  sim::Simulation& sim_;
  LockManager& lm_;
  std::unordered_map<TxnId, Cell> cells_;
};

StressResult RunStress(uint64_t seed, int workers, int txns_per_worker,
                       int items, bool with_assertions) {
  acc::Catalog catalog;
  acc::InterferenceTable table;
  ActorId writer = catalog.RegisterStepType("w");
  AssertionId assertion = catalog.RegisterAssertion("a", 1);
  table.Set(writer, assertion, acc::Interference::kIfSameKey);
  acc::AccConflictResolver resolver(&table);

  StressResult result;
  sim::Simulation sim;
  LockManager lm(&resolver);
  StressHarness harness(sim, lm);
  uint64_t next_txn = 0;

  Rng seeder(seed);
  for (int w = 0; w < workers; ++w) {
    uint64_t worker_seed = seeder.Next();
    sim.Spawn("worker", [&, worker_seed] {
      Rng rng(worker_seed);
      for (int t = 0; t < txns_per_worker; ++t) {
        sim.Delay(rng.Exponential(0.001));
        TxnId txn = ++next_txn;
        bool aborted = false;
        int ops = static_cast<int>(rng.UniformInt(1, 6));
        for (int op = 0; op < ops && !aborted; ++op) {
          ItemId item = ItemId::Row(1, rng.UniformInt(1, items));
          double choice = rng.UniformDouble();
          if (with_assertions && choice < 0.15) {
            RequestContext ctx;
            ctx.actor = writer;
            ctx.assertion = assertion;
            ctx.assertion_instance = static_cast<uint32_t>(op);
            ctx.keys = {rng.UniformInt(1, 4)};
            lm.GrantUnconditional(txn, item, LockMode::kAssert, ctx);
          } else if (with_assertions && choice < 0.25) {
            RequestContext ctx;
            lm.GrantUnconditional(txn, item, LockMode::kComp, ctx);
          } else {
            RequestContext ctx;
            ctx.actor = writer;
            ctx.keys = {rng.UniformInt(1, 4)};
            LockMode mode =
                rng.Bernoulli(0.5) ? LockMode::kS : LockMode::kX;
            if (!harness.AcquireBlocking(txn, item, mode, ctx)) {
              aborted = true;
              ++result.victim_aborts;
            }
          }
          if (!aborted) sim.Delay(rng.Exponential(0.0005));
        }
        lm.ReleaseAll(txn);
        // The simulation is cooperative (one process runs at a time), so
        // probing the release index mid-run is race-free. Every 16th txn
        // keeps the O(table) check from dominating the test.
        if (txn % 16 == 0) {
          std::string violation;
          EXPECT_TRUE(lm.CheckIndexConsistency(&violation)) << violation;
        }
        if (!aborted) ++result.completed;
      }
    });
  }
  sim.Run();
  EXPECT_EQ(sim.live_processes(), 0) << lm.DumpWaiters();
  {
    std::string violation;
    EXPECT_TRUE(lm.CheckIndexConsistency(&violation)) << violation;
  }
  result.stats = lm.stats();
  // After ReleaseAll for every txn, nothing is held anywhere.
  for (int i = 1; i <= items; ++i) {
    EXPECT_EQ(lm.HolderCount(ItemId::Row(1, i)), 0u);
    EXPECT_EQ(lm.QueueLength(ItemId::Row(1, i)), 0u);
  }
  return result;
}

class LockStressTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LockStressTest,
                         ::testing::Values(3, 7, 31, 127, 8191));

TEST_P(LockStressTest, ConventionalOnlyDrains) {
  StressResult result = RunStress(GetParam(), /*workers=*/16,
                                  /*txns_per_worker=*/40, /*items=*/8,
                                  /*with_assertions=*/false);
  EXPECT_GT(result.completed, 300u);
  // Victim aborts only happen when deadlocks were reported.
  EXPECT_LE(result.victim_aborts, result.stats.deadlocks);
}

TEST_P(LockStressTest, WithAssertionalModesDrains) {
  StressResult result = RunStress(GetParam(), /*workers=*/16,
                                  /*txns_per_worker=*/40, /*items=*/8,
                                  /*with_assertions=*/true);
  EXPECT_GT(result.completed, 300u);
}

TEST_P(LockStressTest, Deterministic) {
  StressResult a = RunStress(GetParam(), 8, 20, 6, true);
  StressResult b = RunStress(GetParam(), 8, 20, 6, true);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.victim_aborts, b.victim_aborts);
  EXPECT_EQ(a.stats.requests, b.stats.requests);
  EXPECT_EQ(a.stats.deadlocks, b.stats.deadlocks);
}

}  // namespace
}  // namespace accdb::lock
