#include <gtest/gtest.h>

#include "acc/recovery_log.h"

namespace accdb::acc {
namespace {

TEST(RecoveryLogTest, EmptyLogHasNothingInFlight) {
  RecoveryLog log;
  EXPECT_TRUE(log.FindInFlight().empty());
  EXPECT_EQ(log.size(), 0u);
}

TEST(RecoveryLogTest, CommittedTransactionIsNotInFlight) {
  RecoveryLog log;
  log.Begin(1, "p");
  log.EndOfStep(1, 1, "wa1");
  log.EndOfStep(1, 2, "wa2");
  log.Commit(1);
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, CompensatedTransactionIsNotInFlight) {
  RecoveryLog log;
  log.Begin(1, "p");
  log.EndOfStep(1, 1, "wa");
  log.Compensated(1);
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, BegunButNoStepsIsNotInFlight) {
  // Nothing durable happened: the transaction evaporates, no compensation.
  RecoveryLog log;
  log.Begin(1, "p");
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, InFlightCarriesLatestWorkArea) {
  RecoveryLog log;
  log.Begin(7, "new_order");
  log.EndOfStep(7, 1, "after step 1");
  log.EndOfStep(7, 2, "after step 2");
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].txn, 7u);
  EXPECT_EQ(in_flight[0].program, "new_order");
  EXPECT_EQ(in_flight[0].completed_steps, 2);
  EXPECT_EQ(in_flight[0].work_area, "after step 2");
}

TEST(RecoveryLogTest, InFlightOrderedMostRecentFirst) {
  RecoveryLog log;
  log.Begin(1, "a");
  log.EndOfStep(1, 1, "");
  log.Begin(2, "b");
  log.EndOfStep(2, 1, "");
  log.Begin(3, "c");
  log.EndOfStep(3, 1, "");
  log.Commit(2);
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 2u);
  EXPECT_EQ(in_flight[0].program, "c");  // Most recent begin first.
  EXPECT_EQ(in_flight[1].program, "a");
}

TEST(RecoveryLogTest, InterleavedTransactionsTrackedIndependently) {
  RecoveryLog log;
  log.Begin(1, "a");
  log.Begin(2, "b");
  log.EndOfStep(1, 1, "a1");
  log.EndOfStep(2, 1, "b1");
  log.EndOfStep(1, 2, "a2");
  log.Commit(1);
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].program, "b");
  EXPECT_EQ(in_flight[0].work_area, "b1");
}

TEST(RecoveryLogTest, RecordsPreservedVerbatim) {
  RecoveryLog log;
  log.Begin(5, "prog");
  log.EndOfStep(5, 1, "area");
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].type, LogRecordType::kBegin);
  EXPECT_EQ(log.records()[0].program, "prog");
  EXPECT_EQ(log.records()[1].type, LogRecordType::kEndOfStep);
  EXPECT_EQ(log.records()[1].step_index, 1);
  EXPECT_EQ(log.records()[1].work_area, "area");
}

}  // namespace
}  // namespace accdb::acc
