#include <gtest/gtest.h>

#include "acc/recovery_log.h"
#include "acc/wal.h"

namespace accdb::acc {
namespace {

TEST(RecoveryLogTest, EmptyLogHasNothingInFlight) {
  RecoveryLog log;
  EXPECT_TRUE(log.FindInFlight().empty());
  EXPECT_EQ(log.size(), 0u);
}

TEST(RecoveryLogTest, CommittedTransactionIsNotInFlight) {
  RecoveryLog log;
  log.Begin(1, "p");
  log.EndOfStep(1, 1, "wa1");
  log.EndOfStep(1, 2, "wa2");
  log.Commit(1);
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, CompensatedTransactionIsNotInFlight) {
  RecoveryLog log;
  log.Begin(1, "p");
  log.EndOfStep(1, 1, "wa");
  log.Compensated(1);
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, BegunButNoStepsIsNotInFlight) {
  // Nothing durable happened: the transaction evaporates, no compensation.
  RecoveryLog log;
  log.Begin(1, "p");
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, InFlightCarriesLatestWorkArea) {
  RecoveryLog log;
  log.Begin(7, "new_order");
  log.EndOfStep(7, 1, "after step 1");
  log.EndOfStep(7, 2, "after step 2");
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].txn, 7u);
  EXPECT_EQ(in_flight[0].program, "new_order");
  EXPECT_EQ(in_flight[0].completed_steps, 2);
  EXPECT_EQ(in_flight[0].work_area, "after step 2");
}

TEST(RecoveryLogTest, InFlightOrderedMostRecentFirst) {
  RecoveryLog log;
  log.Begin(1, "a");
  log.EndOfStep(1, 1, "");
  log.Begin(2, "b");
  log.EndOfStep(2, 1, "");
  log.Begin(3, "c");
  log.EndOfStep(3, 1, "");
  log.Commit(2);
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 2u);
  EXPECT_EQ(in_flight[0].program, "c");  // Most recent begin first.
  EXPECT_EQ(in_flight[1].program, "a");
}

TEST(RecoveryLogTest, InterleavedTransactionsTrackedIndependently) {
  RecoveryLog log;
  log.Begin(1, "a");
  log.Begin(2, "b");
  log.EndOfStep(1, 1, "a1");
  log.EndOfStep(2, 1, "b1");
  log.EndOfStep(1, 2, "a2");
  log.Commit(1);
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].program, "b");
  EXPECT_EQ(in_flight[0].work_area, "b1");
}

TEST(RecoveryLogTest, RecordsPreservedVerbatim) {
  RecoveryLog log;
  log.Begin(5, "prog");
  log.EndOfStep(5, 1, "area");
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, LogRecordType::kBegin);
  EXPECT_EQ(records[0].program, "prog");
  EXPECT_EQ(records[1].type, LogRecordType::kEndOfStep);
  EXPECT_EQ(records[1].step_index, 1);
  EXPECT_EQ(records[1].work_area, "area");
}

// --- WAL integration: the durable records round-trip into the same
// in-memory view FindInFlight has always consumed. ---

WalRecord WalRec(LogRecordType type, lock::TxnId txn, uint64_t lsn,
                 const char* program = "", int32_t step = 0,
                 const char* work_area = "") {
  WalRecord rec;
  rec.type = type;
  rec.txn = txn;
  rec.lsn = lsn;
  rec.program = program;
  rec.step_index = step;
  rec.work_area = work_area;
  return rec;
}

TEST(RecoveryLogTest, RebuiltFromWalRecordsMatchesDirectLog) {
  std::vector<WalRecord> records;
  records.push_back(WalRec(LogRecordType::kBegin, 1, 1, "new_order"));
  records.push_back(WalRec(LogRecordType::kBegin, 2, 2, "payment"));
  records.push_back(WalRec(LogRecordType::kEndOfStep, 1, 3, "", 1, "no1"));
  records.push_back(WalRec(LogRecordType::kEndOfStep, 2, 4, "", 1, "pay1"));
  records.push_back(WalRec(LogRecordType::kEndOfStep, 1, 5, "", 2, "no2"));
  records.push_back(WalRec(LogRecordType::kCommit, 2, 6));

  RecoveryLog log = RebuildRecoveryLog(records);
  EXPECT_EQ(log.size(), records.size());
  std::vector<InFlightTxn> in_flight = log.FindInFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].txn, 1u);
  EXPECT_EQ(in_flight[0].program, "new_order");
  EXPECT_EQ(in_flight[0].completed_steps, 2);
  EXPECT_EQ(in_flight[0].work_area, "no2");
}

TEST(RecoveryLogTest, RebuiltLogHonorsCompensatedRecords) {
  // The restarted-then-recovered shape: a second crash must not find the
  // already-compensated transaction in flight again.
  std::vector<WalRecord> records;
  records.push_back(WalRec(LogRecordType::kBegin, 9, 1, "new_order"));
  records.push_back(WalRec(LogRecordType::kEndOfStep, 9, 2, "", 1, "wa"));
  records.push_back(WalRec(LogRecordType::kCompensated, 9, 3));
  RecoveryLog log = RebuildRecoveryLog(records);
  EXPECT_TRUE(log.FindInFlight().empty());
}

TEST(RecoveryLogTest, WalEncodePreservesLsnOrderThroughScan) {
  // Encode a mixed batch, decode it back, and require the LSN sequence to
  // survive verbatim — recovery replays redo strictly in this order.
  std::vector<WalRecord> records;
  records.push_back(WalRec(LogRecordType::kBegin, 4, 1, "delivery"));
  records.push_back(WalRec(LogRecordType::kEndOfStep, 4, 2, "", 1, "d1"));
  records.push_back(WalRec(LogRecordType::kCommit, 4, 3));
  for (const WalRecord& rec : records) {
    WalRecord decoded;
    ASSERT_TRUE(DecodeWalRecord(EncodeWalRecord(rec), &decoded));
    EXPECT_EQ(decoded.lsn, rec.lsn);
    EXPECT_EQ(decoded.type, rec.type);
    EXPECT_EQ(decoded.txn, rec.txn);
  }
}

}  // namespace
}  // namespace accdb::acc
