#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/function_program.h"
#include "acc/recovery.h"
#include "acc/sim_env.h"
#include "acc/txn_context.h"
#include "lock/conflict.h"
#include "orderproc/order_system.h"
#include "orderproc/transactions.h"
#include "sim/simulation.h"
#include "storage/database.h"

namespace accdb::orderproc {
namespace {

using acc::AccConflictResolver;
using acc::Engine;
using acc::EngineConfig;
using acc::ExecMode;
using acc::ExecResult;
using acc::FunctionProgram;
using acc::ImmediateEnv;
using acc::SimExecutionEnv;
using acc::TxnContext;
using storage::Key;
using storage::Value;

class OrderProcTest : public ::testing::Test {
 protected:
  OrderProcTest() : sys_(&db_), acc_resolver_(&sys_.interference) {
    sys_.LoadItems(/*item_count=*/50, /*stock_level=*/100,
                   /*price_cents=*/250);
    EngineConfig config;
    config.charge_acc_overheads = false;
    acc_engine_ = std::make_unique<Engine>(&db_, &acc_resolver_, config);
    ser_engine_ = std::make_unique<Engine>(&db_, &matrix_resolver_, config);
  }

  int64_t StockOf(int64_t item) {
    auto id = sys_.stock->LookupPk(Key(item));
    return (*sys_.stock->Get(*id))[sys_.s_level].AsInt64();
  }

  void SetStock(int64_t item, int64_t level) {
    ASSERT_TRUE(sys_.stock
                    ->UpdateColumns(*sys_.stock->LookupPk(Key(item)),
                                    {{sys_.s_level, Value(level)}})
                    .ok());
  }

  int64_t FilledOf(int64_t order, int64_t item) {
    auto id = sys_.orderlines->LookupPk(Key(order, item));
    if (!id.has_value()) return -1;
    return (*sys_.orderlines->Get(*id))[sys_.ol_filled].AsInt64();
  }

  storage::Database db_;
  OrderSystem sys_;
  AccConflictResolver acc_resolver_;
  lock::MatrixConflictResolver matrix_resolver_;
  std::unique_ptr<Engine> acc_engine_;
  std::unique_ptr<Engine> ser_engine_;
  ImmediateEnv env_;
};

TEST_F(OrderProcTest, NewOrderCommitsAndFills) {
  NewOrderTxn txn(&sys_, /*customer_id=*/7, {{1, 10}, {2, 5}, {3, 1}});
  ExecResult result =
      acc_engine_->Execute(txn, env_, ExecMode::kAccDecomposed);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.steps_completed, 4);  // NO1 + three NO2.
  EXPECT_EQ(txn.total_filled(), 16);
  EXPECT_EQ(StockOf(1), 90);
  EXPECT_EQ(StockOf(2), 95);
  EXPECT_EQ(StockOf(3), 99);
  EXPECT_TRUE(sys_.CheckConsistency());
  EXPECT_EQ(db_.ReadVariable(*sys_.order_counter), 2);
}

TEST_F(OrderProcTest, NewOrderFillsAtMostStock) {
  NewOrderTxn txn(&sys_, 7, {{1, 150}});
  ASSERT_TRUE(
      acc_engine_->Execute(txn, env_, ExecMode::kAccDecomposed).status.ok());
  EXPECT_EQ(txn.total_filled(), 100);
  EXPECT_EQ(StockOf(1), 0);
  // The orderline records ordered=150, filled=100.
  auto lines = sys_.orderlines->ScanPkPrefix(Key(txn.order_id()));
  ASSERT_EQ(lines.size(), 1u);
  const storage::Row& line = *sys_.orderlines->Get(lines[0]);
  EXPECT_EQ(line[sys_.ol_ordered].AsInt64(), 150);
  EXPECT_EQ(line[sys_.ol_filled].AsInt64(), 100);
}

TEST_F(OrderProcTest, BillTotalsOrder) {
  NewOrderTxn order(&sys_, 7, {{1, 4}, {2, 6}});
  ASSERT_TRUE(
      acc_engine_->Execute(order, env_, ExecMode::kAccDecomposed).status.ok());
  BillTxn bill(&sys_, order.order_id());
  ASSERT_TRUE(
      acc_engine_->Execute(bill, env_, ExecMode::kAccDecomposed).status.ok());
  EXPECT_TRUE(bill.found());
  EXPECT_EQ(bill.total(), Money::FromCents(250 * 10));
  auto row = sys_.orders->Get(*sys_.orders->LookupPk(Key(order.order_id())));
  EXPECT_EQ((*row)[sys_.o_price].AsMoney(), Money::FromCents(2500));
}

TEST_F(OrderProcTest, BillOnMissingOrderIsNoop) {
  BillTxn bill(&sys_, 999);
  ASSERT_TRUE(
      acc_engine_->Execute(bill, env_, ExecMode::kAccDecomposed).status.ok());
  EXPECT_FALSE(bill.found());
}

TEST_F(OrderProcTest, CompensationRestoresStockAndRemovesOrder) {
  NewOrderTxn txn(&sys_, 7, {{1, 10}, {2, 5}, {3, 1}},
                  /*abort_at_last_item=*/true);
  ExecResult result =
      acc_engine_->Execute(txn, env_, ExecMode::kAccDecomposed);
  EXPECT_EQ(result.status.code(), StatusCode::kAborted);
  EXPECT_TRUE(result.compensated);
  // Steps 1..3 (NO1 + two NO2) committed, then were compensated.
  EXPECT_EQ(result.steps_completed, 3);
  EXPECT_EQ(StockOf(1), 100);
  EXPECT_EQ(StockOf(2), 100);
  EXPECT_EQ(StockOf(3), 100);
  EXPECT_FALSE(sys_.orders->LookupPk(Key(txn.order_id())).has_value());
  EXPECT_TRUE(sys_.orderlines->ScanPkPrefix(Key(txn.order_id())).empty());
  EXPECT_TRUE(sys_.CheckConsistency());
  // The order number is consumed: the counter increment is not rolled back
  // (the result specification allows "compensation was invoked").
  EXPECT_EQ(db_.ReadVariable(*sys_.order_counter), 2);
}

TEST_F(OrderProcTest, SerializableBaselineProducesSameSingleTxnResults) {
  NewOrderTxn txn(&sys_, 7, {{1, 10}});
  ASSERT_TRUE(
      ser_engine_->Execute(txn, env_, ExecMode::kSerializable).status.ok());
  EXPECT_EQ(StockOf(1), 90);
  BillTxn bill(&sys_, txn.order_id());
  ASSERT_TRUE(
      ser_engine_->Execute(bill, env_, ExecMode::kSerializable).status.ok());
  EXPECT_EQ(bill.total(), Money::FromCents(2500));
  EXPECT_TRUE(sys_.CheckConsistency());
}

// --- Concurrency: the paper's semantic-correctness scenarios ---

// The television/VCR example of Section 4: two new_orders split two stock
// pools between them in a way no serial schedule produces, yet each
// satisfies its specification and the database stays consistent.
TEST_F(OrderProcTest, NonSerializableStockSplitIsSemanticallyCorrect) {
  const int64_t kTv = 1, kVcr = 2;
  SetStock(kTv, 10);
  SetStock(kVcr, 10);

  sim::Simulation sim;
  SimExecutionEnv env_i(sim, nullptr), env_k(sim, nullptr);
  NewOrderTxn ti(&sys_, 1, {{kTv, 10}, {kVcr, 10}});
  ti.set_pause_between_steps(0.05);  // T_k fits inside T_i's think windows.
  NewOrderTxn tk(&sys_, 2, {{kVcr, 10}, {kTv, 10}});
  ExecResult ri, rk;
  sim.Spawn("ti", [&] {
    ri = acc_engine_->Execute(ti, env_i, ExecMode::kAccDecomposed);
  });
  sim.Spawn("tk", [&] {
    sim.Delay(0.07);  // After T_i's NO2(TV), before its NO2(VCR).
    rk = acc_engine_->Execute(tk, env_k, ExecMode::kAccDecomposed);
  });
  sim.Run();
  ASSERT_TRUE(ri.status.ok());
  ASSERT_TRUE(rk.status.ok());

  // T_i got the TVs, T_k got the VCRs — unreachable by any serial schedule
  // (serially, the first transaction takes both pools).
  EXPECT_EQ(FilledOf(ti.order_id(), kTv), 10);
  EXPECT_EQ(FilledOf(ti.order_id(), kVcr), 0);
  EXPECT_EQ(FilledOf(tk.order_id(), kVcr), 10);
  EXPECT_EQ(FilledOf(tk.order_id(), kTv), 0);
  EXPECT_EQ(StockOf(kTv), 0);
  EXPECT_EQ(StockOf(kVcr), 0);
  EXPECT_TRUE(sys_.CheckConsistency());
}

// Under the serializable baseline the same arrival pattern cannot split the
// pools: T_k blocks on T_i's locks and runs entirely after it.
TEST_F(OrderProcTest, SerializableBaselineDoesNotSplitStock) {
  const int64_t kTv = 1, kVcr = 2;
  SetStock(kTv, 10);
  SetStock(kVcr, 10);

  sim::Simulation sim;
  SimExecutionEnv env_i(sim, nullptr), env_k(sim, nullptr);
  NewOrderTxn ti(&sys_, 1, {{kTv, 10}, {kVcr, 10}});
  ti.set_pause_between_steps(0.05);
  NewOrderTxn tk(&sys_, 2, {{kVcr, 10}, {kTv, 10}});
  ExecResult ri, rk;
  sim.Spawn("ti", [&] {
    ri = ser_engine_->Execute(ti, env_i, ExecMode::kSerializable);
  });
  sim.Spawn("tk", [&] {
    sim.Delay(0.07);
    rk = ser_engine_->Execute(tk, env_k, ExecMode::kSerializable);
  });
  sim.Run();
  ASSERT_TRUE(ri.status.ok());
  ASSERT_TRUE(rk.status.ok());
  // Serial outcome: T_i took both pools, T_k got nothing.
  EXPECT_EQ(FilledOf(ti.order_id(), kTv), 10);
  EXPECT_EQ(FilledOf(ti.order_id(), kVcr), 10);
  EXPECT_EQ(FilledOf(tk.order_id(), kVcr), 0);
  EXPECT_EQ(FilledOf(tk.order_id(), kTv), 0);
  EXPECT_TRUE(sys_.CheckConsistency());
}

// "bill cannot be interleaved between the steps of a new_order acting on
// the same order" — the ACC delays bill until the new_order commits, and
// the total it computes covers every line.
TEST_F(OrderProcTest, BillWaitsForInFlightNewOrderOnSameOrder) {
  sim::Simulation sim;
  SimExecutionEnv env_no(sim, nullptr), env_bill(sim, nullptr);
  NewOrderTxn no(&sys_, 1, {{1, 2}, {2, 2}, {3, 2}, {4, 2}});
  no.set_pause_between_steps(0.02);
  int64_t expected_order = db_.ReadVariable(*sys_.order_counter);

  double bill_done = -1, no_done = -1;
  std::unique_ptr<BillTxn> bill;
  ExecResult r_no, r_bill;
  sim.Spawn("new_order", [&] {
    r_no = acc_engine_->Execute(no, env_no, ExecMode::kAccDecomposed);
    no_done = sim.Now();
  });
  sim.Spawn("bill", [&] {
    sim.Delay(0.04);  // Mid new_order.
    bill = std::make_unique<BillTxn>(&sys_, expected_order);
    r_bill = acc_engine_->Execute(*bill, env_bill, ExecMode::kAccDecomposed);
    bill_done = sim.Now();
  });
  sim.Run();
  ASSERT_TRUE(r_no.status.ok());
  ASSERT_TRUE(r_bill.status.ok());
  ASSERT_EQ(no.order_id(), expected_order);
  // Bill saw the complete order: all four lines, total = 8 * $2.50.
  EXPECT_TRUE(bill->found());
  EXPECT_EQ(bill->total(), Money::FromCents(8 * 250));
  // And it finished after the new_order: it had to wait.
  EXPECT_GT(bill_done, no_done);
  EXPECT_TRUE(sys_.CheckConsistency());
}

TEST_F(OrderProcTest, BillOnOtherOrderDoesNotWait) {
  // Commit an old order first.
  NewOrderTxn old_order(&sys_, 1, {{5, 2}});
  ASSERT_TRUE(acc_engine_->Execute(old_order, env_, ExecMode::kAccDecomposed)
                  .status.ok());

  sim::Simulation sim;
  SimExecutionEnv env_no(sim, nullptr), env_bill(sim, nullptr);
  NewOrderTxn no(&sys_, 1, {{1, 2}, {2, 2}, {3, 2}, {4, 2}});
  no.set_pause_between_steps(0.02);
  ExecResult r_no, r_bill;
  double bill_done = -1, no_done = -1;
  BillTxn bill(&sys_, old_order.order_id());
  sim.Spawn("new_order", [&] {
    r_no = acc_engine_->Execute(no, env_no, ExecMode::kAccDecomposed);
    no_done = sim.Now();
  });
  sim.Spawn("bill", [&] {
    sim.Delay(0.03);
    r_bill = acc_engine_->Execute(bill, env_bill, ExecMode::kAccDecomposed);
    bill_done = sim.Now();
  });
  sim.Run();
  ASSERT_TRUE(r_no.status.ok());
  ASSERT_TRUE(r_bill.status.ok());
  // Bill on a *different* order slips in front of the in-flight new_order.
  EXPECT_LT(bill_done, no_done);
  EXPECT_EQ(bill.total(), Money::FromCents(2 * 250));
  EXPECT_TRUE(sys_.CheckConsistency());
}

TEST_F(OrderProcTest, LegacyReaderIsolatedFromIntermediateResults) {
  sim::Simulation sim;
  SimExecutionEnv env_no(sim, nullptr), env_legacy(sim, nullptr);
  NewOrderTxn no(&sys_, 1, {{1, 2}, {2, 2}, {3, 2}, {4, 2}});
  no.set_pause_between_steps(0.02);
  int64_t seen_lines = -1;
  int64_t seen_num_items = -1;
  int64_t target_order = db_.ReadVariable(*sys_.order_counter);

  // An ad-hoc, never-analyzed report: reads the order row and counts its
  // lines. Under the ACC, kComp locks keep it from seeing a partial order.
  FunctionProgram legacy("report", [&](TxnContext& ctx) {
    return ctx.RunStep(
        lock::kNoActor, {}, acc::AssertionInstance{},
        [&](TxnContext& c) -> Status {
          Result<storage::Row> order =
              c.ReadByKey(*sys_.orders, Key(target_order));
          if (!order.ok()) {
            seen_num_items = -2;  // Not visible at all: also consistent.
            return Status::Ok();
          }
          seen_num_items = (*order)[sys_.o_num_items].AsInt64();
          ACCDB_ASSIGN_OR_RETURN(
              auto lines, c.ScanPkPrefix(*sys_.orderlines, Key(target_order)));
          seen_lines = static_cast<int64_t>(lines.size());
          return Status::Ok();
        });
  });
  legacy.set_analyzed(false);

  ExecResult r_no, r_legacy;
  sim.Spawn("new_order", [&] {
    r_no = acc_engine_->Execute(no, env_no, ExecMode::kAccDecomposed);
  });
  sim.Spawn("legacy", [&] {
    sim.Delay(0.04);  // Mid new_order.
    r_legacy =
        acc_engine_->Execute(legacy, env_legacy, ExecMode::kAccDecomposed);
  });
  sim.Run();
  ASSERT_TRUE(r_no.status.ok());
  ASSERT_TRUE(r_legacy.status.ok());
  // The legacy reader either saw nothing or the complete committed order —
  // never a partial state.
  if (seen_num_items >= 0) {
    EXPECT_EQ(seen_num_items, 4);
    EXPECT_EQ(seen_lines, 4);
  } else {
    ADD_FAILURE() << "legacy reader should have seen the committed order";
  }
}

TEST_F(OrderProcTest, ConcurrentCompensationReturnsStockLate) {
  // T_a claims the last 10 units then aborts; T_b, running between T_a's
  // forward steps and its compensation, is refused stock that compensation
  // later returns. Semantically correct (Section 4's closing example).
  const int64_t kItem = 1;
  SetStock(kItem, 10);
  sim::Simulation sim;
  SimExecutionEnv env_a(sim, nullptr), env_b(sim, nullptr);
  NewOrderTxn ta(&sys_, 1, {{kItem, 10}, {2, 1}, {3, 1}},
                 /*abort_at_last_item=*/true);
  ta.set_pause_between_steps(0.02);
  NewOrderTxn tb(&sys_, 2, {{kItem, 10}});
  ExecResult ra, rb;
  sim.Spawn("ta", [&] {
    ra = acc_engine_->Execute(ta, env_a, ExecMode::kAccDecomposed);
  });
  sim.Spawn("tb", [&] {
    sim.Delay(0.035);  // After T_a's first NO2 claimed the stock.
    rb = acc_engine_->Execute(tb, env_b, ExecMode::kAccDecomposed);
  });
  sim.Run();
  EXPECT_EQ(ra.status.code(), StatusCode::kAborted);
  ASSERT_TRUE(rb.status.ok());
  // T_b got nothing even though the final state has stock available.
  EXPECT_EQ(tb.total_filled(), 0);
  EXPECT_EQ(StockOf(kItem), 10);
  EXPECT_TRUE(sys_.CheckConsistency());
}

TEST_F(OrderProcTest, CrashRecoveryCompensatesPartialNewOrder) {
  sim::Simulation sim;
  SimExecutionEnv env(sim, nullptr);
  sim::Signal crash_point(sim);

  // A program that performs new_order's NO1 and first NO2, then hangs on a
  // signal that never fires: the simulation drains with the transaction in
  // flight, modelling a crash between forward steps. It logs under the
  // "new_order" name so the registered compensator recovers it from the
  // serialized work area (the order id).
  class TwoStepsThenHang : public acc::TransactionProgram {
   public:
    TwoStepsThenHang(OrderSystem* sys, sim::Simulation* sim,
                     sim::Signal* crash)
        : sys_(sys), sim_(sim), crash_(crash) {}
    std::string_view name() const override { return "new_order"; }
    lock::ActorId PrefixActor(int steps) const override {
      return steps == 0 ? sys_->prefix_no_empty : sys_->prefix_no_partial;
    }
    bool has_compensation() const override { return true; }
    lock::ActorId CompensationStepType() const override {
      return sys_->step_no_compensate;
    }
    Status Compensate(acc::TxnContext& ctx, int steps) override {
      (void)steps;
      return NewOrderTxn::CompensateOrder(ctx, *sys_, order_id_);
    }
    std::string SerializeWorkArea() const override {
      return std::to_string(order_id_);
    }
    Status Run(acc::TxnContext& ctx) override {
      Status prefix = RunFirstTwoSteps(ctx);
      if (!prefix.ok()) return prefix;
      sim_->WaitSignal(*crash_);  // Crash: never returns.
      return Status::Internal("unreachable");
    }

   private:
    Status RunFirstTwoSteps(acc::TxnContext& ctx) {
      OrderSystem& sys = *sys_;
      ACCDB_RETURN_IF_ERROR(ctx.RunStep(
          sys.step_no_create, {},
          acc::AssertionInstance{sys.assert_no_loop, {}, {}},
          [&](acc::TxnContext& c) -> Status {
            ACCDB_ASSIGN_OR_RETURN(
                int64_t o_num,
                c.ReadVariable(*sys.order_counter, /*for_update=*/true));
            ACCDB_RETURN_IF_ERROR(
                c.WriteVariable(*sys.order_counter, o_num + 1));
            ACCDB_RETURN_IF_ERROR(
                c.Insert(*sys.orders,
                         {Value(o_num), Value(int64_t{1}), Value(int64_t{2}),
                          Value(Money())})
                    .status());
            order_id_ = o_num;
            c.UpdateNextAssertion(
                acc::AssertionInstance{sys.assert_no_loop, {o_num}, {}});
            return Status::Ok();
          }));
      return ctx.RunStep(
          sys.step_no_orderline, {order_id_, 1},
          acc::AssertionInstance{sys.assert_no_loop, {order_id_}, {}},
          [&](acc::TxnContext& c) -> Status {
            ACCDB_ASSIGN_OR_RETURN(
                storage::Row stock_row,
                c.ReadByKey(*sys.stock, Key(int64_t{1}),
                            /*for_update=*/true));
            ACCDB_RETURN_IF_ERROR(
                c.Update(*sys.stock, *sys.stock->LookupPk(Key(int64_t{1})),
                         {{sys.s_level,
                           Value(stock_row[sys.s_level].AsInt64() - 5)}}));
            return c
                .Insert(*sys.orderlines,
                        {Value(order_id_), Value(int64_t{1}),
                         Value(int64_t{5}), Value(int64_t{5})})
                .status();
          });
    }

    OrderSystem* sys_;
    sim::Simulation* sim_;
    sim::Signal* crash_;
    int64_t order_id_ = 0;
  };

  TwoStepsThenHang hanging(&sys_, &sim, &crash_point);
  sim.Spawn("t", [&] {
    (void)acc_engine_->Execute(hanging, env, ExecMode::kAccDecomposed);
  });
  sim.Run();
  // Mid-flight: stock taken, order and one line present, I1 false.
  EXPECT_EQ(StockOf(1), 95);
  EXPECT_FALSE(sys_.CheckConsistency());

  // Crash & recover on a fresh engine over the surviving database.
  acc::RecoveryLog log = acc_engine_->recovery_log();
  EngineConfig config;
  config.charge_acc_overheads = false;
  Engine fresh(&db_, &acc_resolver_, config);
  acc::CompensatorRegistry registry;
  RegisterCompensators(&sys_, &registry);
  ImmediateEnv recovery_env;
  acc::RecoveryReport report = RunRecovery(fresh, log, registry, recovery_env);
  EXPECT_EQ(report.in_flight, 1);
  EXPECT_EQ(report.compensated, 1);
  EXPECT_EQ(StockOf(1), 100);
  EXPECT_TRUE(sys_.CheckConsistency());
}

}  // namespace
}  // namespace accdb::orderproc
