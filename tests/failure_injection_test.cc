// Failure injection: transactions crash at random step boundaries while
// normal traffic runs, then the system "crashes" (volatile state lost) and
// recovery compensates every in-flight transaction. The database must end
// consistent for every seed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "acc/conflict_resolver.h"
#include "acc/engine.h"
#include "acc/recovery.h"
#include "acc/sim_env.h"
#include "common/rng.h"
#include "sim/simulation.h"
#include "storage/database.h"
#include "tpcc/consistency.h"
#include "tpcc/loader.h"
#include "tpcc/transactions.h"

namespace accdb::tpcc {
namespace {

using acc::ExecMode;

// Wraps a program so that it hangs forever after `crash_after_steps`
// completed steps (checked between RunStep calls by polling the context).
// Implemented for new-order: the inner program runs a truncated line list
// so it stops cleanly at a step boundary, then hangs.
class CrashingNewOrder : public acc::TransactionProgram {
 public:
  CrashingNewOrder(TpccDb* db, NewOrderInput input, int lines_before_crash,
                   sim::Simulation* sim, sim::Signal* crash)
      : db_(db),
        input_(std::move(input)),
        lines_before_crash_(lines_before_crash),
        sim_(sim),
        crash_(crash) {}

  std::string_view name() const override { return "tpcc.new_order"; }
  lock::ActorId PrefixActor(int steps) const override {
    return steps == 0 ? db_->prefix_empty : db_->prefix_no_partial;
  }
  bool has_compensation() const override { return true; }
  lock::ActorId CompensationStepType() const override {
    return db_->step_cs_no;
  }
  Status Compensate(acc::TxnContext& ctx, int steps) override {
    (void)steps;
    return inner_ != nullptr
               ? NewOrderTxn::CompensateOrder(ctx, *db_, input_.w_id,
                                              input_.d_id, inner_->order_id())
               : Status::Ok();
  }
  std::string SerializeWorkArea() const override {
    return inner_ != nullptr ? inner_->SerializeWorkArea() : "0 0 0";
  }

  Status Run(acc::TxnContext& ctx) override {
    NewOrderInput truncated = input_;
    truncated.lines.resize(
        std::min<size_t>(truncated.lines.size(), lines_before_crash_));
    inner_ = std::make_unique<NewOrderTxn>(db_, truncated);
    Status status = inner_->Run(ctx);
    if (!status.ok()) return status;
    sim_->WaitSignal(*crash_);  // Crash point; never fires.
    return Status::Internal("unreachable");
  }

 private:
  TpccDb* db_;
  NewOrderInput input_;
  int lines_before_crash_;
  sim::Simulation* sim_;
  sim::Signal* crash_;
  std::unique_ptr<NewOrderTxn> inner_;
};

class FailureInjectionTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionTest,
                         ::testing::Values(1, 17, 42, 1234));

TEST_P(FailureInjectionTest, RecoveryAfterMidFlightCrashes) {
  storage::Database database;
  TpccDb db(&database);
  LoadDatabase(db, ScaleConfig::Test(), GetParam());
  acc::AccConflictResolver resolver(&db.interference);
  acc::EngineConfig config;
  config.charge_acc_overheads = false;
  auto engine = std::make_unique<acc::Engine>(&database, &resolver, config);

  Rng rng(GetParam() * 31 + 7);
  InputGenConfig gen_config;
  gen_config.scale = ScaleConfig::Test();
  InputGenerator gen(gen_config, rng.Next());

  int crashers = 0;
  {
    sim::Simulation sim;
    sim::Signal crash_point(sim);
    std::vector<std::unique_ptr<acc::SimExecutionEnv>> envs;
    std::vector<std::unique_ptr<acc::TransactionProgram>> programs;

    // Crashing transactions: hang after 1-3 completed order lines.
    for (int i = 0; i < 4; ++i) {
      NewOrderInput input = gen.NextNewOrder();
      input.rollback = false;
      if (input.lines.size() < 4) continue;
      envs.push_back(std::make_unique<acc::SimExecutionEnv>(sim, nullptr));
      programs.push_back(std::make_unique<CrashingNewOrder>(
          &db, input, static_cast<int>(rng.UniformInt(1, 3)), &sim,
          &crash_point));
      acc::SimExecutionEnv* env = envs.back().get();
      acc::TransactionProgram* prog = programs.back().get();
      double start = 0.01 * i;
      sim.Spawn("crasher", [&, env, prog, start] {
        sim.Delay(start);
        (void)engine->Execute(*prog, *env, ExecMode::kAccDecomposed);
      });
      ++crashers;
    }

    // Normal traffic around them.
    for (int t = 0; t < 6; ++t) {
      envs.push_back(std::make_unique<acc::SimExecutionEnv>(sim, nullptr));
      acc::SimExecutionEnv* env = envs.back().get();
      uint64_t seed = rng.Next();
      sim.Spawn("terminal", [&, env, seed] {
        Rng term_rng(seed);
        InputGenConfig cfg;
        cfg.scale = ScaleConfig::Test();
        InputGenerator term_gen(cfg, term_rng.Next());
        for (int i = 0; i < 20; ++i) {
          sim.Delay(term_rng.Exponential(0.02));
          switch (term_gen.NextType()) {
            case TxnType::kNewOrder: {
              NewOrderTxn txn(&db, term_gen.NextNewOrder());
              (void)engine->Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kPayment: {
              PaymentTxn txn(&db, term_gen.NextPayment());
              (void)engine->Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kOrderStatus: {
              OrderStatusTxn txn(&db, term_gen.NextOrderStatus());
              (void)engine->Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kDelivery: {
              DeliveryTxn txn(&db, term_gen.NextDelivery());
              (void)engine->Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
            case TxnType::kStockLevel: {
              StockLevelTxn txn(&db, term_gen.NextStockLevel());
              (void)engine->Execute(txn, *env, ExecMode::kAccDecomposed);
              break;
            }
          }
        }
      });
    }
    sim.Run();  // Drains; the crashers are stuck mid-flight.
    // The crashers are stuck, and normal transactions blocked on the
    // crashers' locks may be stranded with them — a crash takes down
    // everything in flight.
    EXPECT_GE(sim.live_processes(), crashers)
        << engine->lock_manager().DumpWaiters();
  }
  ASSERT_GT(crashers, 0);

  // Crash: discard everything volatile, keep the database and log.
  acc::RecoveryLog log = engine->recovery_log();
  engine.reset();

  acc::Engine fresh(&database, &resolver, config);
  acc::CompensatorRegistry registry;
  RegisterTpccCompensators(&db, &registry);
  acc::ImmediateEnv recovery_env;
  acc::RecoveryReport report =
      acc::RunRecovery(fresh, log, registry, recovery_env);
  EXPECT_GE(report.in_flight, crashers);
  EXPECT_EQ(report.compensated, report.in_flight);
  EXPECT_EQ(report.failed, 0) << report.first_error.ToString();
  EXPECT_EQ(report.missing_compensator, 0);

  ConsistencyReport consistency = CheckConsistency(db, /*strict=*/false);
  EXPECT_TRUE(consistency.ok) << (consistency.violations.empty()
                                      ? ""
                                      : consistency.violations[0]);
}

}  // namespace
}  // namespace accdb::tpcc
