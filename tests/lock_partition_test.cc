// Partitioned lock-table coverage: deadlock cycles whose items live on
// DIFFERENT partitions (pinned with the test-only partition_fn override),
// the compensation-breaks-cycle rule spanning partitions, release-path
// partition isolation (a txn's release latches only the partitions its
// holder index names), and stats-shard conservation (summing the partition
// shards, the wait-tier shard and release_calls reproduces the single-latch
// totals — and the merged totals are identical for any partition count).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "lock/conflict.h"
#include "lock/lock_manager.h"
#include "lock/types.h"

namespace accdb::lock {
namespace {

class RecordingListener : public LockManager::Listener {
 public:
  void OnGranted(TxnId txn) override { granted.push_back(txn); }
  void OnWaiterAborted(TxnId txn) override { aborted.push_back(txn); }

  std::vector<TxnId> granted;
  std::vector<TxnId> aborted;
};

// Pins every item to partition (row % divisor) so tests can place a cycle's
// items on chosen partitions regardless of the hash.
LockManagerOptions PinnedByRow(size_t partitions) {
  LockManagerOptions options;
  options.partitions = partitions;
  options.partition_fn = [](const ItemId& item) {
    return static_cast<size_t>(item.row);
  };
  return options;
}

class LockPartitionTest : public ::testing::Test {
 protected:
  LockPartitionTest() : lm_(&resolver_, PinnedByRow(4)) {
    lm_.set_listener(&listener_);
  }

  Outcome Req(TxnId txn, ItemId item, LockMode mode, RequestContext ctx = {}) {
    return lm_.Request(txn, item, mode, std::move(ctx));
  }

  MatrixConflictResolver resolver_;
  LockManager lm_;
  RecordingListener listener_;
  // Rows chosen so the items land on partitions 0, 1, 2 and 3.
  ItemId item_p0_ = ItemId::Row(1, 4);  // 4 % 4 == 0
  ItemId item_p1_ = ItemId::Row(1, 5);  // 5 % 4 == 1
  ItemId item_p2_ = ItemId::Row(1, 6);  // 6 % 4 == 2
  ItemId item_p3_ = ItemId::Row(1, 7);  // 7 % 4 == 3
};

TEST_F(LockPartitionTest, PartitionPinningAndResolution) {
  EXPECT_EQ(lm_.partition_count(), 4u);
  EXPECT_EQ(lm_.PartitionIndex(item_p0_), 0u);
  EXPECT_EQ(lm_.PartitionIndex(item_p1_), 1u);
  EXPECT_EQ(lm_.PartitionIndex(item_p3_), 3u);
  // The override wraps modulo the partition count.
  EXPECT_EQ(lm_.PartitionIndex(ItemId::Row(1, 9)), 1u);

  // Auto / rounding behaviour of the partition count itself.
  EXPECT_EQ(LockManager::ResolvePartitionCount(1), 1u);
  EXPECT_EQ(LockManager::ResolvePartitionCount(3), 4u);
  EXPECT_EQ(LockManager::ResolvePartitionCount(64), 64u);
  EXPECT_GE(LockManager::ResolvePartitionCount(0), 2u);
}

// A two-member cycle whose items live on different partitions: the
// requester that closes the cycle is refused, exactly as under one latch.
TEST_F(LockPartitionTest, CrossPartitionDeadlockRequesterVictim) {
  EXPECT_EQ(Req(1, item_p0_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_p3_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_p3_, LockMode::kX), Outcome::kWaiting);
  EXPECT_EQ(lm_.BlockedBy(1), std::vector<TxnId>{2});
  // Txn 2's request on partition 0 closes a cycle through partition 3.
  EXPECT_EQ(Req(2, item_p0_, LockMode::kX), Outcome::kAborted);

  LockManager::Stats stats = lm_.stats();
  EXPECT_EQ(stats.deadlocks, 1u);
  EXPECT_EQ(stats.deadlock_victim_aborts, 1u);
  EXPECT_FALSE(lm_.IsWaiting(2));
  EXPECT_TRUE(lm_.IsWaiting(1));
  // Unwinding txn 2 hands partition 3 to txn 1.
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
}

// A three-member cycle spanning three partitions.
TEST_F(LockPartitionTest, ThreePartitionCycle) {
  EXPECT_EQ(Req(1, item_p0_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_p1_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(3, item_p2_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_p1_, LockMode::kX), Outcome::kWaiting);  // 1 -> 2
  EXPECT_EQ(Req(2, item_p2_, LockMode::kX), Outcome::kWaiting);  // 2 -> 3
  // 3 -> 1 closes the cycle across partitions 0, 1 and 2.
  EXPECT_EQ(Req(3, item_p0_, LockMode::kX), Outcome::kAborted);
  EXPECT_EQ(lm_.stats().deadlocks, 1u);
  // The survivors drain: 3's rollback frees partition 2 for 2, whose
  // completion frees partition 1 for 1.
  lm_.ReleaseAll(3);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{2});
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, (std::vector<TxnId>{2, 1}));
}

// Section 3.4 across partitions: a compensating step closing a
// cross-partition cycle is never the victim — the other member's pending
// request (queued on a different partition) is aborted instead.
TEST_F(LockPartitionTest, CrossPartitionCompensationBreaksCycle) {
  EXPECT_EQ(Req(1, item_p0_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_p3_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_p0_, LockMode::kX), Outcome::kWaiting);
  RequestContext comp;
  comp.for_compensation = true;
  Outcome outcome = Req(1, item_p3_, LockMode::kX, comp);
  // Txn 2's pending request (partition 0) was killed; txn 1 still waits
  // for txn 2's lingering hold on partition 3 until the rollback releases.
  EXPECT_EQ(listener_.aborted, std::vector<TxnId>{2});
  EXPECT_EQ(outcome, Outcome::kWaiting);
  LockManager::Stats stats = lm_.stats();
  EXPECT_EQ(stats.compensation_priority_aborts, 1u);
  EXPECT_EQ(stats.deadlock_victim_aborts, 1u);
  lm_.ReleaseAll(2);
  EXPECT_EQ(listener_.granted, std::vector<TxnId>{1});
}

// A cycle closed by an unconditional grant — no triggering request — whose
// edges span partitions: the wait-tier resolver (materialized waits-for
// graph) must catch it without latching any partition during the DFS.
TEST_F(LockPartitionTest, LateEdgeCycleAcrossPartitionsResolved) {
  EXPECT_EQ(Req(9, item_p0_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(1, item_p1_, LockMode::kX), Outcome::kGranted);
  EXPECT_EQ(Req(2, item_p1_, LockMode::kX), Outcome::kWaiting);  // 2 -> 1
  EXPECT_EQ(Req(1, item_p0_, LockMode::kX), Outcome::kWaiting);  // 1 -> 9
  EXPECT_EQ(lm_.stats().deadlocks, 0u);
  // Txn 2's assertional lock lands on partition 0's item: 1 -> {9, 2} and
  // 2 -> 1 — a cross-partition cycle with no new request.
  RequestContext actx;
  actx.assertion = 5;
  lm_.GrantUnconditional(2, item_p0_, LockMode::kAssert, actx);
  EXPECT_EQ(lm_.stats().deadlocks, 1u);
  EXPECT_EQ(listener_.aborted.size(), 1u);
  EXPECT_FALSE(lm_.IsWaiting(listener_.aborted[0]));
}

// ReleaseAll is strictly index-driven: a transaction whose locks all live
// on one partition never latches the other partitions' release paths.
TEST_F(LockPartitionTest, ReleaseVisitsOnlyHoldingPartitions) {
  // Rows ≡ 1 (mod 4): everything txn 1 touches lives on partition 1.
  for (uint64_t row = 1; row <= 33; row += 4) {
    EXPECT_EQ(Req(1, ItemId::Row(1, row), LockMode::kX), Outcome::kGranted);
  }
  // A second transaction parks locks on partition 2.
  EXPECT_EQ(Req(2, item_p2_, LockMode::kX), Outcome::kGranted);

  lm_.ReleaseAll(1);
  EXPECT_EQ(lm_.HeldItemCount(1), 0u);
  EXPECT_GT(lm_.PartitionReleaseVisitsForTest(1), 0u);
  EXPECT_EQ(lm_.PartitionReleaseVisitsForTest(0), 0u);
  EXPECT_EQ(lm_.PartitionReleaseVisitsForTest(2), 0u);
  EXPECT_EQ(lm_.PartitionReleaseVisitsForTest(3), 0u);

  lm_.ReleaseConventional(2);
  EXPECT_EQ(lm_.PartitionReleaseVisitsForTest(2), 1u);
  EXPECT_EQ(lm_.PartitionReleaseVisitsForTest(0), 0u);
}

// Drives one fixed scripted scenario (grants, waits, upgrades, a deadlock,
// an unconditional grant, releases) against a manager; used to compare
// counter behaviour across partition counts.
LockManager::Stats RunScriptedScenario(LockManager& lm,
                                       LockManager::Listener* listener) {
  lm.set_listener(listener);
  ItemId a = ItemId::Row(1, 100);
  ItemId b = ItemId::Row(1, 201);
  ItemId c = ItemId::Row(1, 302);
  ItemId d = ItemId::Row(1, 403);

  EXPECT_EQ(lm.Request(1, a, LockMode::kS, {}), Outcome::kGranted);
  EXPECT_EQ(lm.Request(2, a, LockMode::kS, {}), Outcome::kGranted);
  EXPECT_EQ(lm.Request(3, a, LockMode::kX, {}), Outcome::kWaiting);
  EXPECT_EQ(lm.Request(1, b, LockMode::kX, {}), Outcome::kGranted);
  EXPECT_EQ(lm.Request(1, b, LockMode::kS, {}), Outcome::kGranted);  // Covered.
  EXPECT_EQ(lm.Request(2, c, LockMode::kS, {}), Outcome::kGranted);
  EXPECT_EQ(lm.Request(2, c, LockMode::kX, {}), Outcome::kGranted);  // Upgrade.
  RequestContext actx;
  actx.assertion = 7;
  lm.GrantUnconditional(1, d, LockMode::kAssert, actx);
  EXPECT_EQ(lm.Request(4, d, LockMode::kX, {}), Outcome::kWaiting);
  lm.RecordWaitTime(LockMode::kX, 0.25);
  // Deadlock: 2 holds c and waits for b; 1 holds b and requests c.
  EXPECT_EQ(lm.Request(2, b, LockMode::kX, {}), Outcome::kWaiting);
  EXPECT_EQ(lm.Request(1, c, LockMode::kX, {}), Outcome::kAborted);
  lm.CancelWaiter(4);
  lm.ReleaseConventional(1);
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
  lm.ReleaseAll(4);
  return lm.StatsSnapshot();
}

bool StatsEqual(const LockManager::Stats& a, const LockManager::Stats& b) {
  return a.requests == b.requests &&
         a.immediate_grants == b.immediate_grants && a.waits == b.waits &&
         a.deadlocks == b.deadlocks &&
         a.compensation_priority_aborts == b.compensation_priority_aborts &&
         a.unconditional_grants == b.unconditional_grants &&
         a.upgrades == b.upgrades && a.release_calls == b.release_calls &&
         a.deadlock_victim_aborts == b.deadlock_victim_aborts &&
         std::memcmp(a.blocks_by_class, b.blocks_by_class,
                     sizeof(a.blocks_by_class)) == 0 &&
         std::memcmp(a.wait_seconds_by_class, b.wait_seconds_by_class,
                     sizeof(a.wait_seconds_by_class)) == 0 &&
         a.conv_conv_blocks == b.conv_conv_blocks &&
         a.write_assert_blocks == b.write_assert_blocks &&
         a.assert_write_blocks == b.assert_write_blocks &&
         a.other_blocks == b.other_blocks &&
         a.queue_depth_sum == b.queue_depth_sum &&
         a.queue_depth_max == b.queue_depth_max;
}

// The merged counters are independent of the partition count: the same
// scripted scenario yields field-identical totals on 1, 4 and 64
// partitions (the simulation-invisibility property, counter edition).
TEST(LockPartitionStatsTest, MergedStatsIdenticalAcrossPartitionCounts) {
  MatrixConflictResolver resolver;
  std::vector<LockManager::Stats> runs;
  for (size_t partitions : {size_t{1}, size_t{4}, size_t{64}}) {
    LockManagerOptions options;
    options.partitions = partitions;
    LockManager lm(&resolver, std::move(options));
    RecordingListener listener;
    runs.push_back(RunScriptedScenario(lm, &listener));
  }
  EXPECT_TRUE(StatsEqual(runs[0], runs[1]));
  EXPECT_TRUE(StatsEqual(runs[0], runs[2]));
  // Sanity: the scenario exercised the interesting counters.
  EXPECT_GT(runs[0].requests, 0u);
  EXPECT_GT(runs[0].waits, 0u);
  EXPECT_EQ(runs[0].deadlocks, 1u);
  EXPECT_EQ(runs[0].upgrades, 1u);
  EXPECT_EQ(runs[0].unconditional_grants, 1u);
  EXPECT_EQ(runs[0].release_calls, 5u);
}

// Conservation: the per-partition shards plus the wait-tier shard plus the
// atomic release counter sum to exactly the merged snapshot — no count is
// dropped or double-reported by the sharding.
TEST(LockPartitionStatsTest, ShardsSumToSnapshot) {
  MatrixConflictResolver resolver;
  LockManagerOptions options;
  options.partitions = 8;
  LockManager lm(&resolver, std::move(options));
  RecordingListener listener;
  LockManager::Stats merged = RunScriptedScenario(lm, &listener);

  LockManager::Stats summed;
  for (size_t p = 0; p < lm.partition_count(); ++p) {
    summed.MergeFrom(lm.PartitionStatsForTest(p));
  }
  summed.MergeFrom(lm.WaitTierStatsForTest());
  summed.release_calls = merged.release_calls;  // The atomic, not a shard.
  EXPECT_TRUE(StatsEqual(summed, merged));

  // The split is as designed: fast-path counters live in the partitions,
  // wait/deadlock accounting in the wait tier.
  LockManager::Stats wait_tier = lm.WaitTierStatsForTest();
  EXPECT_EQ(wait_tier.requests, 0u);
  EXPECT_GT(wait_tier.waits, 0u);
  EXPECT_EQ(wait_tier.deadlocks, 1u);
  LockManager::Stats partitions_only;
  for (size_t p = 0; p < lm.partition_count(); ++p) {
    partitions_only.MergeFrom(lm.PartitionStatsForTest(p));
  }
  EXPECT_EQ(partitions_only.waits, 0u);
  EXPECT_GT(partitions_only.requests, 0u);
}

// ResetStats zeroes every shard.
TEST(LockPartitionStatsTest, ResetClearsAllShards) {
  MatrixConflictResolver resolver;
  LockManagerOptions options;
  options.partitions = 4;
  LockManager lm(&resolver, std::move(options));
  RecordingListener listener;
  RunScriptedScenario(lm, &listener);
  lm.ResetStats();
  LockManager::Stats zero;
  EXPECT_TRUE(StatsEqual(lm.StatsSnapshot(), zero));
}

}  // namespace
}  // namespace accdb::lock
