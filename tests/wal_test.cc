// WAL unit tests: record codec round-trip, LSN discipline, durability under
// both flush modes, reopen/resume, and torn-tail handling — including the
// exhaustive sweep truncating the file at every byte offset of the last
// record (the shapes a mid-write crash can leave behind).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "acc/wal.h"
#include "common/record_file.h"
#include "storage/value.h"

namespace accdb::acc {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "accdb_wal_test_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

WalRecord SampleEndOfStep(lock::TxnId txn, int32_t step) {
  WalRecord rec;
  rec.type = LogRecordType::kEndOfStep;
  rec.txn = txn;
  rec.step_index = step;
  rec.work_area = "serialized work area bytes \x01\x02\x03";
  WalRedoOp update;
  update.kind = WalRedoOp::Kind::kUpdate;
  update.table = 3;
  update.row = 42;
  update.columns.emplace_back(1, storage::Value(int64_t{-7}));
  update.columns.emplace_back(4, storage::Value(std::string("abc")));
  rec.redo.push_back(std::move(update));
  WalRedoOp insert;
  insert.kind = WalRedoOp::Kind::kInsert;
  insert.table = 9;
  insert.row = 1000 + static_cast<storage::RowId>(step);
  insert.row_data = {storage::Value(int64_t{5}), storage::Value(2.5),
                     storage::Value(Money::FromCents(1234)),
                     storage::Value(std::string("row"))};
  rec.redo.push_back(std::move(insert));
  WalRedoOp del;
  del.kind = WalRedoOp::Kind::kDelete;
  del.table = 2;
  del.row = 17;
  rec.redo.push_back(std::move(del));
  return rec;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.lsn, b.lsn);
  EXPECT_EQ(a.txn, b.txn);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.step_index, b.step_index);
  EXPECT_EQ(a.work_area, b.work_area);
  ASSERT_EQ(a.redo.size(), b.redo.size());
  for (size_t i = 0; i < a.redo.size(); ++i) {
    EXPECT_EQ(a.redo[i].kind, b.redo[i].kind);
    EXPECT_EQ(a.redo[i].table, b.redo[i].table);
    EXPECT_EQ(a.redo[i].row, b.redo[i].row);
    EXPECT_EQ(a.redo[i].row_data, b.redo[i].row_data);
    EXPECT_EQ(a.redo[i].columns, b.redo[i].columns);
  }
}

TEST(WalCodecTest, RoundTripAllFields) {
  WalRecord rec = SampleEndOfStep(77, 3);
  rec.lsn = 12;
  WalRecord decoded;
  ASSERT_TRUE(DecodeWalRecord(EncodeWalRecord(rec), &decoded));
  ExpectRecordsEqual(rec, decoded);
}

TEST(WalCodecTest, RoundTripBeginAndCommit) {
  WalRecord begin;
  begin.type = LogRecordType::kBegin;
  begin.lsn = 1;
  begin.txn = 5;
  begin.program = "new_order";
  WalRecord decoded;
  ASSERT_TRUE(DecodeWalRecord(EncodeWalRecord(begin), &decoded));
  ExpectRecordsEqual(begin, decoded);

  WalRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.lsn = 2;
  commit.txn = 5;
  ASSERT_TRUE(DecodeWalRecord(EncodeWalRecord(commit), &decoded));
  ExpectRecordsEqual(commit, decoded);
}

TEST(WalCodecTest, RejectsTruncatedAndPaddedPayloads) {
  const std::string payload = EncodeWalRecord(SampleEndOfStep(1, 1));
  WalRecord out;
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeWalRecord(payload.substr(0, len), &out))
        << "decoded from a " << len << "-byte prefix";
  }
  EXPECT_FALSE(DecodeWalRecord(payload + "x", &out));
}

TEST(WalTest, AppendAssignsDenseLsnsAndWaitDurableFlushes) {
  const std::string path = TempPath("dense_lsn");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_EQ(wal->durable_lsn(), 0u);
  EXPECT_EQ(wal->Append(SampleEndOfStep(1, 1)), 1u);
  EXPECT_EQ(wal->Append(SampleEndOfStep(1, 2)), 2u);
  EXPECT_EQ(wal->Append(SampleEndOfStep(2, 1)), 3u);
  wal->WaitDurable(3);
  EXPECT_GE(wal->durable_lsn(), 3u);
  Wal::Stats stats = wal->StatsSnapshot();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_GT(stats.bytes_written, 0u);
  ::unlink(path.c_str());
}

TEST(WalTest, ConcurrentAppendsStayDenseAndOrdered) {
  const std::string path = TempPath("concurrent");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 100}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t lsn = wal->Append(
            SampleEndOfStep(static_cast<lock::TxnId>(t * 1000 + i + 1), 1));
        wal->WaitDurable(lsn);
        EXPECT_GE(wal->durable_lsn(), lsn);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  wal.reset();

  // The surviving file holds every record exactly once, LSNs dense 1..N in
  // file order (prefix-ordered durability).
  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  const std::vector<WalRecord>& recovered = wal->recovered();
  ASSERT_EQ(recovered.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].lsn, i + 1);
  }
  EXPECT_FALSE(wal->recovered_torn_tail());
  ::unlink(path.c_str());
}

TEST(WalTest, ReopenResumesLsnsAndReportsMaxTxn) {
  const std::string path = TempPath("reopen");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->Append(SampleEndOfStep(10, 1));
  wal->Append(SampleEndOfStep(31, 1));
  wal->WaitDurable(2);
  wal.reset();  // Destructor final-flushes.

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  ASSERT_EQ(wal->recovered().size(), 2u);
  EXPECT_EQ(wal->max_recovered_txn(), 31u);
  EXPECT_EQ(wal->durable_lsn(), 2u);
  EXPECT_EQ(wal->Append(SampleEndOfStep(32, 1)), 3u);
  wal->WaitDurable(3);
  wal.reset();

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_EQ(wal->recovered().size(), 3u);
  EXPECT_EQ(wal->max_recovered_txn(), 32u);
  ::unlink(path.c_str());
}

TEST(WalTest, GroupCommitWindowMakesCommitsDurable) {
  const std::string path = TempPath("group_commit");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 200}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  const uint64_t lsn = wal->Append(SampleEndOfStep(1, 1));
  wal->WaitDurable(lsn);
  EXPECT_GE(wal->durable_lsn(), lsn);
  EXPECT_GE(wal->StatsSnapshot().fsyncs, 1u);
  ::unlink(path.c_str());
}

// A crash can cut the file anywhere inside the last frame: after a partial
// length header, inside the checksum, or mid-payload. Every such prefix must
// recover the intact records, flag the torn tail, and truncate it away so
// the next append starts from a clean boundary.
TEST(WalTest, TornTailDetectedAtEveryByteOffsetOfLastRecord) {
  const std::string path = TempPath("torn_tail");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->Append(SampleEndOfStep(1, 1));
  wal->Append(SampleEndOfStep(2, 1));
  wal->WaitDurable(2);
  wal.reset();
  const std::string prefix = ReadFileBytes(path);

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->Append(SampleEndOfStep(3, 1));
  wal->WaitDurable(3);
  wal.reset();
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(full.size(), prefix.size());

  for (size_t cut = prefix.size() + 1; cut < full.size(); ++cut) {
    WriteFileBytes(path, full.substr(0, cut));
    std::unique_ptr<Wal> reopened = Wal::Open({path, 0}, &status);
    ASSERT_NE(reopened, nullptr)
        << "cut at byte " << cut << ": " << status.ToString();
    EXPECT_EQ(reopened->recovered().size(), 2u) << "cut at byte " << cut;
    EXPECT_TRUE(reopened->recovered_torn_tail()) << "cut at byte " << cut;
    // The torn bytes are gone: the next record lands at LSN 3 and the file
    // scans clean afterwards.
    EXPECT_EQ(reopened->Append(SampleEndOfStep(9, 1)), 3u);
    reopened->WaitDurable(3);
    reopened.reset();
    reopened = Wal::Open({path, 0}, &status);
    ASSERT_NE(reopened, nullptr) << status.ToString();
    EXPECT_EQ(reopened->recovered().size(), 3u) << "cut at byte " << cut;
    EXPECT_FALSE(reopened->recovered_torn_tail()) << "cut at byte " << cut;
  }
  ::unlink(path.c_str());
}

TEST(WalTest, IoErrorIsStickyAndFailStop) {
  const std::string path = TempPath("io_error");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_EQ(wal->Append(SampleEndOfStep(1, 1)), 1u);
  EXPECT_TRUE(wal->WaitDurable(1).ok());
  EXPECT_EQ(wal->durable_lsn(), 1u);

  wal->SimulateIoErrorForTest(Status::Internal("injected fsync failure"));
  // Records past the failure never become durable: the wait surfaces the
  // sticky error instead of acknowledging, and the durable LSN is frozen.
  EXPECT_EQ(wal->Append(SampleEndOfStep(2, 1)), 2u);
  EXPECT_FALSE(wal->WaitDurable(2).ok());
  EXPECT_FALSE(wal->io_status().ok());
  EXPECT_EQ(wal->durable_lsn(), 1u);
  // The already-durable prefix still reports clean.
  EXPECT_TRUE(wal->WaitDurable(1).ok());
  wal.reset();  // The final-flush in the destructor must stay gated too.

  // Fail-stop kept the on-disk log exactly the durable prefix: no bytes
  // after the failure, so no LSN gap on reopen.
  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_EQ(wal->recovered().size(), 1u);
  EXPECT_FALSE(wal->recovered_torn_tail());
  ::unlink(path.c_str());
}

TEST(WalTest, GroupCommitIoErrorWakesWaitersAndStopsFlusher) {
  const std::string path = TempPath("io_error_group");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 200}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->SimulateIoErrorForTest(Status::Internal("injected fsync failure"));
  // A committer arriving after the failure must not block forever on the
  // (now stopped) flusher — it gets the sticky error.
  const uint64_t lsn = wal->Append(SampleEndOfStep(1, 1));
  EXPECT_FALSE(wal->WaitDurable(lsn).ok());
  EXPECT_EQ(wal->durable_lsn(), 0u);
  wal.reset();  // Destructor joins the exited flusher and writes nothing.

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_TRUE(wal->recovered().empty());
  ::unlink(path.c_str());
}

TEST(WalTest, CorruptedChecksumDropsTailRecord) {
  const std::string path = TempPath("bad_crc");
  ::unlink(path.c_str());
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->Append(SampleEndOfStep(1, 1));
  wal->WaitDurable(1);
  wal.reset();
  const std::string clean = ReadFileBytes(path);

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  wal->Append(SampleEndOfStep(2, 1));
  wal->WaitDurable(2);
  wal.reset();
  std::string bytes = ReadFileBytes(path);
  // Flip one payload byte of the second record: its CRC no longer matches,
  // so the scan must stop after the first record.
  bytes[clean.size() + 10] = static_cast<char>(bytes[clean.size() + 10] ^ 0xff);
  WriteFileBytes(path, bytes);

  wal = Wal::Open({path, 0}, &status);
  ASSERT_NE(wal, nullptr) << status.ToString();
  EXPECT_EQ(wal->recovered().size(), 1u);
  EXPECT_TRUE(wal->recovered_torn_tail());
  ::unlink(path.c_str());
}

TEST(WalTest, ValidChecksumButGarbagePayloadIsAnError) {
  // A frame whose CRC matches but whose payload is not a WalRecord is
  // corruption the truncation rule must NOT paper over: Open fails.
  const std::string path = TempPath("garbage_payload");
  ::unlink(path.c_str());
  std::string bytes;
  AppendFrame(&bytes, "definitely not a wal record");
  WriteFileBytes(path, bytes);
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  EXPECT_EQ(wal, nullptr);
  EXPECT_FALSE(status.ok());
  ::unlink(path.c_str());
}

TEST(WalTest, LsnGapInFileIsAnError) {
  // Two well-formed records whose LSNs skip 2: the log is not a dense
  // prefix, so Open must refuse rather than replay around the hole.
  const std::string path = TempPath("lsn_gap");
  ::unlink(path.c_str());
  WalRecord first = SampleEndOfStep(1, 1);
  first.lsn = 1;
  WalRecord third = SampleEndOfStep(2, 1);
  third.lsn = 3;
  std::string bytes;
  AppendFrame(&bytes, EncodeWalRecord(first));
  AppendFrame(&bytes, EncodeWalRecord(third));
  WriteFileBytes(path, bytes);
  Status status;
  std::unique_ptr<Wal> wal = Wal::Open({path, 0}, &status);
  EXPECT_EQ(wal, nullptr);
  EXPECT_FALSE(status.ok());
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace accdb::acc
